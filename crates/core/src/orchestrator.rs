//! The data-learning loop — Algorithm 1 of the paper.
//!
//! One [`WarehouseOptimizer`] per warehouse (C5: a fresh smart model per
//! warehouse, never shared), coordinated by the [`Orchestrator`]:
//!
//! ```text
//! while true:
//!   if T hours elapsed since last training:
//!     D ← D ∪ ReadTelemetryData(last T hours)       # fetcher
//!     M ← TrainSmartModel(D, wh, aggr, WCM)          # trainer
//!   if T_realtime minutes elapsed since last action:
//!     feedback ← Monitoring.RealTimeState()          # monitor
//!     action ← M.nextAction(UC, WCM, feedback)       # agent + constraints
//!     Actuator.apply(wh, action)                     # actuator
//!   savings ← cm.estimateSavings(...)                # cost model
//!   report(...)
//! ```
//!
//! The loop is fault-aware: every tick first evaluates a [`HealthMonitor`]
//! from live signals (telemetry staleness, reconciler failures, config
//! drift) and the resulting state gates what runs — training is skipped on
//! stale data, decisions fall back to a conservative live-signal policy
//! while degraded, and repeated actuation failures freeze optimization
//! entirely while the [`Reconciler`] keeps probing the control plane.

use crate::actuator::{ActionLogEntry, Actuator, LogEntryKind};
use crate::drng::DetRng;
use crate::health::{DegradeReason, HealthMonitor, HealthSettings, HealthSignals, HealthState};
use crate::monitoring::{Monitor, RealTimeState};
use crate::persist::{
    self, CtlState, OptimizerSnapshot, PersistError, PersistRecord, RecoveryStats, RetrainRecord,
    SnapshotState,
};
use crate::reconciler::{Reconciler, ReconcilerSettings};
use crate::store::StateStore;
use agent::{
    baseline_p99, reconstruct_specs, train_on_workload, AgentAction, AgentState, ConstraintSet,
    DegradedFallback, DqnAgent, DqnConfig, EpisodeConfig, PerfSignals, Policy, Rule,
    SliderPosition, Transition,
};
use cdw_sim::{
    QueryRecord, SimTime, Simulator, WarehouseCommand, WarehouseConfig, WarehouseEventRecord,
    WarehouseId, DAY_MS, HOUR_MS, MINUTE_MS,
};
use costmodel::{estimate_savings, ReplayConfig, SavingsReport, WarehouseCostModel};
use keebo_obs::{DecisionEvent, DecisionTrace, Histogram, MaskEntry, TraceFeatures};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use std::time::Instant;
use telemetry::{TelemetryFetcher, TelemetryStore};

/// Wall-clock time per control tick (µs), across every optimizer in the
/// process. Observability only — wall time never feeds back into decisions.
fn tick_wall_histogram() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        keebo_obs::global().histogram(
            "keebo.tick.wall_us",
            &[
                50.0, 100.0, 250.0, 500.0, 1_000.0, 5_000.0, 25_000.0, 100_000.0,
            ],
        )
    })
}

/// Per-warehouse KWO configuration: everything the customer's admin sets in
/// the web portal (§4.1) plus operational cadences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KwoSetup {
    /// The cost/performance slider.
    pub slider: SliderPosition,
    /// Hard business rules.
    pub constraints: ConstraintSet,
    /// `T_realtime`: decision + feedback cadence.
    pub realtime_interval_ms: SimTime,
    /// `T`: retraining cadence.
    pub train_interval_ms: SimTime,
    /// Offline episodes at onboarding.
    pub onboarding_episodes: usize,
    /// Offline episodes per periodic retrain.
    pub refresh_episodes: usize,
    /// How much trailing history feeds each offline training pass.
    pub train_window_ms: SimTime,
    /// Optimization pause after an external change (the admin can also
    /// resume explicitly via [`Orchestrator::admin_resume`]).
    pub external_pause_ms: SimTime,
    /// Degradation thresholds for the health state machine.
    pub health: HealthSettings,
    /// Retry/backoff tuning for the desired-state reconciler.
    pub reconciler: ReconcilerSettings,
    /// Decision-trace ring-buffer capacity (events kept per warehouse);
    /// 0 disables tracing. Tracing is read-only bookkeeping and never
    /// perturbs decisions.
    pub trace_capacity: usize,
    /// WAL/snapshot compaction policy when a durable store is attached.
    /// `#[serde(default)]` keeps pre-policy persisted setups decodable — a
    /// v1 reader restoring a v0 snapshot fills in the historical default
    /// (48-tick cadence), which is exactly what the v0 writer ran.
    #[serde(default)]
    pub snapshot_policy: SnapshotPolicy,
}

impl Default for KwoSetup {
    fn default() -> Self {
        Self {
            slider: SliderPosition::Balanced,
            constraints: ConstraintSet::new(),
            realtime_interval_ms: 10 * MINUTE_MS,
            train_interval_ms: 24 * HOUR_MS,
            onboarding_episodes: 5,
            refresh_episodes: 1,
            train_window_ms: 3 * DAY_MS,
            external_pause_ms: 12 * HOUR_MS,
            health: HealthSettings::default(),
            reconciler: ReconcilerSettings::default(),
            trace_capacity: 2048,
            snapshot_policy: SnapshotPolicy::default(),
        }
    }
}

/// When to compact the WAL into a snapshot, and how many superseded
/// snapshots to keep. Age- and size-based triggers compose: the first one
/// to fire wins. A `0` disables that trigger; all triggers disabled means
/// the WAL grows until [`Orchestrator::restore`] compacts it.
///
/// Compaction timing never feeds back into decisions, so any policy leaves
/// the optimization trajectory bit-identical — the crash-drill matrix pins
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotPolicy {
    /// Age trigger: snapshot after this many control ticks.
    pub interval_ticks: u64,
    /// Size trigger: snapshot once the WAL reaches this many bytes.
    pub max_wal_bytes: u64,
    /// Size trigger: snapshot once the WAL holds this many records.
    pub max_wal_records: u64,
    /// Superseded snapshot generations to retain after each compaction
    /// (0 = current snapshot only).
    pub retain_snapshots: u32,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        Self {
            interval_ticks: DEFAULT_SNAPSHOT_INTERVAL_TICKS,
            max_wal_bytes: 0,
            max_wal_records: 0,
            retain_snapshots: 0,
        }
    }
}

impl SnapshotPolicy {
    /// Tighter of two trigger thresholds, treating 0 as "disabled".
    fn tight(a: u64, b: u64) -> u64 {
        match (a, b) {
            (0, x) | (x, 0) => x,
            (a, b) => a.min(b),
        }
    }

    /// Combines two policies conservatively: the tighter trigger wins on
    /// every axis, and retention keeps the larger request. Used to fold
    /// per-warehouse setups into one store-level policy.
    pub fn merge(self, other: Self) -> Self {
        Self {
            interval_ticks: Self::tight(self.interval_ticks, other.interval_ticks),
            max_wal_bytes: Self::tight(self.max_wal_bytes, other.max_wal_bytes),
            max_wal_records: Self::tight(self.max_wal_records, other.max_wal_records),
            retain_snapshots: self.retain_snapshots.max(other.retain_snapshots),
        }
    }
}

/// An action mask under construction, remembering *why* each masked action
/// was masked: the constraint rule names (C1–C4 style business rules), the
/// analytic slider floor, the performance guardrail, health gates. This is
/// what lets the decision trace answer "why did WH_A downsize at hour 412 —
/// and why was nothing else on the table?".
struct MaskTrace {
    mask: [bool; AgentAction::COUNT],
    reasons: [Vec<String>; AgentAction::COUNT],
}

impl MaskTrace {
    /// Starts from the constraint mask, attributing each constraint-masked
    /// action to the offending rule names (or inapplicability).
    fn new(constraints: &ConstraintSet, config: &WarehouseConfig, now: SimTime) -> Self {
        let mask = constraints.action_mask(config, now);
        let mut reasons: [Vec<String>; AgentAction::COUNT] = Default::default();
        for a in AgentAction::ALL {
            if mask[a.index()] {
                continue;
            }
            if !a.is_applicable(config) {
                reasons[a.index()].push("inapplicable".to_string());
            }
            for rule in constraints.violations(a, config, now) {
                reasons[a.index()].push(format!("constraint:{rule}"));
            }
        }
        Self { mask, reasons }
    }

    /// Masks `action`, recording `reason` if this call is what masked it
    /// (already-masked actions keep their original causes).
    fn disallow(&mut self, action: AgentAction, reason: &str) {
        let i = action.index();
        if self.mask[i] {
            self.mask[i] = false;
            self.reasons[i].push(reason.to_string());
        }
    }

    fn allows(&self, action: AgentAction) -> bool {
        self.mask[action.index()]
    }

    /// The full mask as trace entries, aligned with [`AgentAction::ALL`].
    fn entries(&self) -> Vec<MaskEntry> {
        AgentAction::ALL
            .iter()
            .map(|a| MaskEntry {
                action: format!("{a:?}"),
                allowed: self.mask[a.index()],
                reasons: self.reasons[a.index()].clone(),
            })
            .collect()
    }
}

/// Derives an independent deterministic RNG seed for a named stream (a
/// managed warehouse, a fleet shard) from a root seed.
///
/// The seed depends only on `(root, key)` — never on how many other streams
/// exist or in what order they were created — so a warehouse's learning
/// randomness is identical whether it is managed alone or alongside a whole
/// fleet (C5 isolation by construction), and fleet results are bit-identical
/// regardless of worker-thread count.
pub fn derive_stream_seed(root: u64, key: &str) -> u64 {
    // FNV-1a over the key, then a splitmix64 finalizer to decorrelate
    // nearby roots and short keys.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = root ^ h;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Why [`Orchestrator::try_manage`] refused to manage a warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManageError {
    /// No warehouse with that name exists in the simulator's account.
    UnknownWarehouse(String),
    /// The warehouse already has an optimizer; managing it twice would
    /// create two models fighting over one warehouse.
    AlreadyManaged(String),
}

impl std::fmt::Display for ManageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManageError::UnknownWarehouse(w) => write!(f, "unknown warehouse {w}"),
            ManageError::AlreadyManaged(w) => write!(f, "warehouse {w} is already managed"),
        }
    }
}

impl std::error::Error for ManageError {}

/// The configuration `commands` would produce starting from `cfg` — the
/// *intent* recorded with the reconciler even when the control plane drops
/// or delays the actual ALTERs. Suspend/resume are runtime state, not
/// configuration, and pass through unchanged.
fn intended_config(mut cfg: WarehouseConfig, commands: &[WarehouseCommand]) -> WarehouseConfig {
    for cmd in commands {
        match *cmd {
            WarehouseCommand::SetSize(size) => cfg.size = size,
            WarehouseCommand::SetAutoSuspend { ms } => cfg.auto_suspend_ms = ms,
            WarehouseCommand::SetClusterRange { min, max } => {
                cfg.min_clusters = min;
                cfg.max_clusters = max;
            }
            WarehouseCommand::SetScalingPolicy(p) => cfg.scaling_policy = p,
            WarehouseCommand::Suspend | WarehouseCommand::Resume => {}
        }
    }
    cfg
}

/// What one tick did that replay cannot re-derive from the simulator: the
/// nondeterministic inputs (training seeds, the observed transition) and
/// whether telemetry was ingested. Captured unconditionally per tick, read
/// by [`WarehouseOptimizer::tick_record`] when a state store is attached.
#[derive(Debug, Clone, Default)]
struct TickEffects {
    fetched: bool,
    retrain: Option<RetrainRecord>,
    transition: Option<Transition>,
    train_step_seed: Option<u64>,
}

/// The per-warehouse optimization state: smart model, cost model, telemetry,
/// monitoring, actuation, and learning bookkeeping.
pub struct WarehouseOptimizer {
    wh: WarehouseId,
    name: String,
    /// The customer's configuration at onboarding — the without-Keebo
    /// state every replay compares against.
    original_config: WarehouseConfig,
    /// The most recently observed configuration (feeds training).
    expected_config: WarehouseConfig,
    setup: KwoSetup,
    agent: DqnAgent,
    cost_model: WarehouseCostModel,
    store: TelemetryStore,
    fetcher: TelemetryFetcher,
    monitor: Monitor,
    actuator: Actuator,
    reconciler: Reconciler,
    health: HealthMonitor,
    fallback: DegradedFallback,
    rng: DetRng,
    onboarded: bool,
    last_train: SimTime,
    last_action: Option<AgentAction>,
    prev_state: Option<(Vec<f64>, usize)>,
    prev_credits: f64,
    prev_dropped: u64,
    paused_until: Option<SimTime>,
    baseline_p99_ms: f64,
    /// Warehouse events before this time have already been scanned for
    /// external changes; advances only when a fetch succeeds, so events
    /// delivered late (after an outage) are still inspected.
    events_cursor: SimTime,
    /// The most recent configuration under which performance was healthy
    /// (latency near baseline, no queue buildup). Back-off rolls back to
    /// this — "roll back the previous settings of the warehouse" (§4.3).
    last_good_config: Option<WarehouseConfig>,
    /// Auto-suspend setting computed analytically at the last training
    /// (idle cost vs cold-restart cost, §3); applied at the next tick.
    pending_auto_suspend: Option<SimTime>,
    /// Consecutive healthy ticks; sustained health decays any capacity
    /// held above the customer's original configuration.
    healthy_streak: u32,
    /// Per-tick decision log (ring buffer; capacity from
    /// [`KwoSetup::trace_capacity`]). Write-only from the control loop.
    /// Deliberately *not* persisted: it is observability, recreated empty
    /// after recovery so the trace never perturbs (or bloats) durability.
    trace: DecisionTrace,
    /// Replay-relevant effects of the current tick (see [`TickEffects`]).
    effects: TickEffects,
}

impl WarehouseOptimizer {
    fn new(
        wh: WarehouseId,
        name: String,
        original_config: WarehouseConfig,
        setup: KwoSetup,
        seed: u64,
    ) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let agent = DqnAgent::new(DqnConfig::default(), &mut rng);
        // The reconciler's jitter stream is derived from the optimizer seed
        // but independent of the learning stream, so adding or removing
        // retries never perturbs training randomness.
        let reconciler = Reconciler::with_settings(seed ^ 0xD6E8_FEB8_6659_FD93, setup.reconciler);
        let health = HealthMonitor::new(setup.health);
        let trace = DecisionTrace::new(setup.trace_capacity);
        Self {
            wh,
            expected_config: original_config.clone(),
            original_config,
            setup,
            agent,
            cost_model: WarehouseCostModel::default(),
            store: TelemetryStore::new(),
            fetcher: TelemetryFetcher::new(),
            monitor: Monitor::new(10_000.0),
            actuator: Actuator::new(),
            reconciler,
            health,
            fallback: DegradedFallback::default(),
            rng,
            onboarded: false,
            last_train: 0,
            last_action: None,
            prev_state: None,
            prev_credits: 0.0,
            prev_dropped: 0,
            paused_until: None,
            baseline_p99_ms: 10_000.0,
            events_cursor: 0,
            last_good_config: None,
            pending_auto_suspend: None,
            healthy_streak: 0,
            trace,
            effects: TickEffects::default(),
            name,
        }
    }

    /// Warehouse name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The original (without-Keebo) configuration.
    pub fn original_config(&self) -> &WarehouseConfig {
        &self.original_config
    }

    /// Telemetry accumulated so far.
    pub fn store(&self) -> &TelemetryStore {
        &self.store
    }

    /// Action history.
    pub fn actuator(&self) -> &Actuator {
        &self.actuator
    }

    /// The trained cost model.
    pub fn cost_model(&self) -> &WarehouseCostModel {
        &self.cost_model
    }

    /// The health state machine (degradation history and tick counters).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// The desired-state reconciler.
    pub fn reconciler(&self) -> &Reconciler {
        &self.reconciler
    }

    /// Telemetry fetch statistics (including outages and partial batches).
    pub fn fetcher(&self) -> &TelemetryFetcher {
        &self.fetcher
    }

    /// The per-tick decision trace (empty when `trace_capacity` is 0).
    pub fn trace(&self) -> &DecisionTrace {
        &self.trace
    }

    /// Whether optimization is currently paused due to an external change.
    pub fn is_paused(&self, now: SimTime) -> bool {
        self.paused_until.is_some_and(|t| now < t)
    }

    /// Whether this optimizer has completed onboarding (a warm-restored
    /// optimizer reports `true` immediately — no re-onboarding).
    pub fn onboarded(&self) -> bool {
        self.onboarded
    }

    /// Moves the slider (no retraining needed; the model re-calibrates its
    /// decisions because the slider is part of its state — §4.3).
    pub fn set_slider(&mut self, slider: SliderPosition) {
        self.setup.slider = slider;
    }

    /// One telemetry pull; returns whether the metadata service answered.
    fn fetch(&mut self, sim: &mut Simulator) -> bool {
        let now = sim.now();
        let fault = sim.poll_telemetry_fault();
        self.fetcher
            .fetch(sim.account_mut(), &mut self.store, now, fault)
            .is_ok()
    }

    /// Trains the cost model and smart model from accumulated telemetry.
    /// Returns the episode seed drawn from the learning RNG, or `None` when
    /// an early path skipped the episode loop (the WAL records the outcome
    /// so recovery replays the exact same pass).
    fn train(&mut self, now: SimTime, episodes: usize) -> Option<u64> {
        self.train_with(now, episodes, None)
    }

    /// [`Self::train`], but replay can inject the originally drawn episode
    /// seed instead of advancing the learning RNG.
    fn train_with(
        &mut self,
        now: SimTime,
        episodes: usize,
        replay_seed: Option<u64>,
    ) -> Option<u64> {
        let records = self.store.queries(&self.name).to_vec();
        if records.is_empty() {
            return None;
        }
        let cfg = &self.expected_config;
        self.cost_model =
            WarehouseCostModel::train(&records, 0, now, cfg.max_concurrency, cfg.max_clusters);
        // Offline episodes on the recent reconstructed workload.
        let from = now.saturating_sub(self.setup.train_window_ms);
        let recent: Vec<QueryRecord> = records
            .iter()
            .filter(|r| r.arrival >= from)
            .cloned()
            .collect();
        if recent.is_empty() || episodes == 0 {
            self.last_train = now;
            return None;
        }
        let mut specs = reconstruct_specs(&recent, &self.cost_model.latency);
        // Shift arrivals to episode-local time.
        let t0 = specs.iter().map(|s| s.arrival).min().unwrap_or(0);
        for s in &mut specs {
            s.arrival -= t0;
        }
        // Serving baseline: the *observed* p99 restricted to executions at
        // the original size, so KWO's own downsizing can never inflate what
        // "normal" means, while the estimate still sharpens with more data.
        let observed: Vec<f64> = records
            .iter()
            .filter(|r| r.size == self.original_config.size)
            .map(|r| r.total_latency_ms() as f64)
            .collect();
        if !observed.is_empty() {
            self.baseline_p99_ms = telemetry::percentile(&observed, 99.0).max(1.0);
            self.monitor.baseline_p99_ms = self.baseline_p99_ms;
        }
        // Auto-suspend: analytic optimum over the observed gap distribution
        // (idle cost at the current rate vs measured cold-restart cost).
        let aso = costmodel::AutoSuspendOptimizer::train(&recent);
        let best = aso.optimal_ms(
            &agent::AUTO_SUSPEND_LADDER_MS,
            self.expected_config.size.credits_per_hour(),
            self.setup.slider.perf_penalty_weight(),
            self.setup.slider.backoff_latency_ratio(),
        );
        self.pending_auto_suspend = Some(best);

        // Training baseline: measured inside the reconstructed world so the
        // episode reward compares like with like.
        let episode_baseline = baseline_p99(&specs, &self.original_config).max(1.0);
        let ep_cfg = EpisodeConfig {
            decision_interval_ms: self.setup.realtime_interval_ms,
            baseline_p99_ms: episode_baseline,
            tail_ms: HOUR_MS,
        };
        let seed: u64 = match replay_seed {
            Some(s) => s,
            None => self.rng.gen(),
        };
        train_on_workload(
            &mut self.agent,
            &specs,
            &self.original_config,
            self.setup.slider,
            &self.setup.constraints,
            &ep_cfg,
            episodes,
            seed,
        );
        self.last_train = now;
        Some(seed)
    }

    /// The live health signals at `now` (pre-reconcile: this tick's repair
    /// outcome is seen next tick).
    fn health_signals(&self, sim: &Simulator, now: SimTime) -> HealthSignals {
        let config_drift = self.reconciler.desired().is_some_and(|want| {
            !Reconciler::drift_commands(want, &sim.account().describe(self.wh).config).is_empty()
        });
        HealthSignals {
            telemetry_staleness_ms: self.store.staleness_ms(now),
            consecutive_actuation_failures: self.reconciler.consecutive_failures(),
            config_drift,
        }
    }

    /// Copies the monitored state into trace form (sanitized so the JSONL
    /// export never carries NaN/Inf).
    fn trace_features(rts: &RealTimeState) -> TraceFeatures {
        TraceFeatures {
            arrival_rate_per_hour: rts.window.arrival_rate_per_hour,
            mean_latency_ms: rts.window.mean_latency_ms,
            p99_latency_ms: rts.window.p99_latency_ms,
            mean_queue_ms: rts.window.mean_queue_ms,
            mean_concurrency: rts.window.mean_concurrency,
            queue_depth: rts.queue_depth,
            load_zscore: rts.load_zscore,
            latency_ratio: rts.latency_ratio,
        }
        .sanitized()
    }

    /// Appends one decision event for this tick. Pure bookkeeping: reads
    /// values already computed by the control loop and never feeds back.
    #[allow(clippy::too_many_arguments)]
    fn record_decision(
        &mut self,
        now: SimTime,
        health: HealthState,
        config: &WarehouseConfig,
        rts: &RealTimeState,
        mask: Vec<MaskEntry>,
        chosen: String,
        reason: &str,
        reward: Option<f64>,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(DecisionEvent {
            t_ms: now,
            hour: now / HOUR_MS,
            warehouse: self.name.clone(),
            health: health.to_string(),
            size: format!("{:?}", config.size),
            min_clusters: config.min_clusters,
            max_clusters: config.max_clusters,
            auto_suspend_ms: config.auto_suspend_ms,
            features: Self::trace_features(rts),
            mask,
            chosen,
            reason: reason.to_string(),
            reward,
        });
    }

    /// One real-time step of Algorithm 1 (lines 17–23), gated by health.
    /// Wall time per tick lands in the `keebo.tick.wall_us` histogram.
    fn tick(&mut self, sim: &mut Simulator) {
        // lint: allow(D1) — wall time only feeds the tick-duration histogram, never a decision
        let t0 = Instant::now();
        self.effects = TickEffects::default();
        self.tick_inner(sim);
        tick_wall_histogram().observe(t0.elapsed().as_secs_f64() * 1e6);
    }

    fn tick_inner(&mut self, sim: &mut Simulator) {
        let now = sim.now();
        let fetched = self.fetch(sim);
        self.effects.fetched = fetched;

        let signals = self.health_signals(sim, now);
        let health = self.health.evaluate(now, signals);

        // Periodic retraining (lines 14–16) — never on stale telemetry: a
        // model refreshed on pre-outage data would silently learn that the
        // world stopped.
        if self.onboarded
            && self.health.can_train()
            && now.saturating_sub(self.last_train) >= self.setup.train_interval_ms
        {
            let episodes = self.setup.refresh_episodes;
            let seed = self.train(now, episodes);
            self.effects.retrain = Some(RetrainRecord { episodes, seed });
        }
        if !self.onboarded {
            // Observation mode: learn the workload before acting. Events
            // seen before onboarding are setup, not interference.
            if fetched {
                self.events_cursor = now;
            }
            return;
        }

        let interval = self.setup.realtime_interval_ms;
        let desc = sim.account().describe(self.wh);
        let window_records: Vec<&QueryRecord> = self
            .store
            .queries_in(&self.name, now.saturating_sub(interval), now)
            .iter()
            .collect();
        // External-change detection is event-based and outage-tolerant: the
        // cursor only advances on successful fetches, so an admin's ALTER
        // issued during a telemetry outage is still caught when the events
        // are finally delivered.
        let window_events: Vec<&WarehouseEventRecord> =
            self.store.events_in(&self.name, self.events_cursor, now);

        // Line 18: feedback from monitoring.
        let rts = self.monitor.assess(
            &window_records,
            &window_events,
            now,
            interval,
            desc.queued_queries,
            sim.account().warehouse(self.wh).longest_running_ms(now),
            self.setup.slider,
        );
        if fetched {
            self.events_cursor = now;
        }

        // External changes pause optimization (§4.4). The external config
        // is the new truth: drop our own intent so the reconciler never
        // fights the admin.
        if rts.external_change {
            let mut chosen = AgentAction::NoOp;
            if !self.is_paused(now) {
                // Revert our own last action, then step aside.
                if let Some(inv) = self.last_action.and_then(AgentAction::inverse) {
                    if inv.is_applicable(&desc.config) {
                        self.actuator.apply(
                            sim,
                            self.wh,
                            &self.name,
                            &desc.config,
                            inv,
                            "external-revert",
                        );
                        chosen = inv;
                    }
                }
                self.last_action = None;
            }
            self.paused_until = Some(now + self.setup.external_pause_ms);
            self.reconciler.clear();
            self.expected_config = sim.account().describe(self.wh).config;
            self.prev_state = None;
            let cfg = self.expected_config.clone();
            self.record_decision(
                now,
                health,
                &cfg,
                &rts,
                vec![],
                format!("{chosen:?}"),
                "paused:external-change",
                None,
            );
            return;
        }
        if self.is_paused(now) {
            self.prev_state = None;
            self.record_decision(
                now,
                health,
                &desc.config,
                &rts,
                vec![],
                "NoOp".to_string(),
                "paused",
                None,
            );
            return;
        }

        // Re-drive any drift between intent and observation (failed,
        // dropped, or delayed ALTERs). This runs in every health state —
        // when frozen it is the *only* thing that runs, probing the control
        // plane under its own backoff until it heals.
        self.reconciler
            .reconcile(sim, &mut self.actuator, self.wh, &self.name);

        if !self.health.can_optimize() {
            self.prev_state = None;
            self.healthy_streak = 0;
            self.record_decision(
                now,
                health,
                &desc.config,
                &rts,
                vec![],
                "NoOp".to_string(),
                "frozen",
                None,
            );
            return;
        }
        if matches!(
            health,
            HealthState::Degraded(DegradeReason::ActuationFailures)
                | HealthState::Degraded(DegradeReason::ConfigDrift)
        ) {
            // Mid-repair: proposing new moves now would thrash the intent
            // the reconciler is still converging on.
            self.prev_state = None;
            self.healthy_streak = 0;
            self.record_decision(
                now,
                health,
                &desc.config,
                &rts,
                vec![],
                "NoOp".to_string(),
                "degraded:mid-repair",
                None,
            );
            return;
        }

        // Apply the analytically chosen auto-suspend (once per retrain),
        // respecting constraints by checking the equivalent knob move.
        // Healthy ticks only: the target stays pending through degradation
        // rather than racing a mid-repair reconciler.
        if health == HealthState::Healthy {
            if let Some(target) = self.pending_auto_suspend.take() {
                if target != desc.config.auto_suspend_ms {
                    let probe = if target < desc.config.auto_suspend_ms {
                        AgentAction::AutoSuspendDown
                    } else {
                        AgentAction::AutoSuspendUp
                    };
                    if self.setup.constraints.allows(probe, &desc.config, now) {
                        let cmds = [WarehouseCommand::SetAutoSuspend { ms: target }];
                        self.actuator.apply_commands(
                            sim,
                            self.wh,
                            &self.name,
                            &cmds,
                            LogEntryKind::Action,
                            "auto-suspend-optimizer",
                        );
                        self.reconciler
                            .set_desired(intended_config(desc.config.clone(), &cmds));
                        self.expected_config = sim.account().describe(self.wh).config;
                    }
                }
            }
        }

        let desc = sim.account().describe(self.wh);

        // Learning bookkeeping: reward the previous action with what the
        // interval actually cost and how it performed.
        let state = AgentState {
            now,
            window: rts.window.clone(),
            config: desc.config.clone(),
            queue_depth: desc.queued_queries,
            cache_warm: sim.account().warehouse(self.wh).cache_warm_fraction(),
            suspended: desc.is_suspended,
            slider: self.setup.slider,
        };
        let state_vec = state.to_vec();
        let mut mtrace = MaskTrace::new(&self.setup.constraints, &desc.config, now);

        // Auto-suspend is owned by the analytic optimizer; the policy keeps
        // size and parallelism (and SuspendNow for mid-interval idleness).
        mtrace.disallow(AgentAction::AutoSuspendUp, "owner:auto-suspend-optimizer");
        mtrace.disallow(AgentAction::AutoSuspendDown, "owner:auto-suspend-optimizer");

        // Stale telemetry: windowed features describe the past, not the
        // present. Hold the last-known-good policy (no training, no new
        // transitions) and decide from live control-plane signals only —
        // capacity may be added to protect performance, never removed.
        if !self.health.can_train() {
            for a in [
                AgentAction::SizeDown,
                AgentAction::ClustersDown,
                AgentAction::SuspendNow,
            ] {
                mtrace.disallow(a, "health:stale-telemetry");
            }
            let action = self.fallback.decide(&state, &mtrace.mask, &mut self.rng);
            if action != AgentAction::NoOp {
                let cmds = action.to_commands(&desc.config);
                self.actuator.apply(
                    sim,
                    self.wh,
                    &self.name,
                    &desc.config,
                    action,
                    "degraded-fallback",
                );
                self.reconciler
                    .set_desired(intended_config(desc.config.clone(), &cmds));
                self.expected_config = sim.account().describe(self.wh).config;
            }
            self.prev_state = None;
            self.healthy_streak = 0;
            let mask_entries = mtrace.entries();
            self.record_decision(
                now,
                health,
                &desc.config,
                &rts,
                mask_entries,
                format!("{action:?}"),
                "degraded-fallback",
                None,
            );
            return;
        }

        // C4 guardrail: while the warehouse is already behind on
        // performance, capacity-reducing moves are off the table — the
        // model chooses among NoOp and capacity-increasing actions only.
        // The healthy threshold matches the back-off threshold so there is
        // no gray zone where the policy can ratchet capacity up over
        // routine cold-start blips that monitoring would not act on.
        // The queue threshold sits above the warehouse resume delay: a 2 s
        // auto-resume wait is the price of suspension, not queue pressure.
        let perf_healthy = rts.latency_ratio <= self.setup.slider.backoff_latency_ratio()
            && rts.window.mean_queue_ms < 5_000.0
            && rts.queue_depth < 8;
        if !perf_healthy {
            for a in [
                AgentAction::SizeDown,
                AgentAction::ClustersDown,
                AgentAction::AutoSuspendDown,
                AgentAction::SuspendNow,
            ] {
                mtrace.disallow(a, "C4:perf-unhealthy");
            }
        } else {
            self.last_good_config = Some(desc.config.clone());
            // Downsizing only pays while queries actually run (a suspended
            // warehouse bills nothing at any size), and without live load
            // there is no evidence the smaller size performs acceptably —
            // so resizing down requires observed work in the window.
            let has_load_evidence = rts.window.mean_concurrency > 0.0 && rts.window.arrivals > 0;
            let above_original = desc.config.size > self.original_config.size;
            if (!has_load_evidence || desc.is_suspended) && !above_original {
                // Stepping back down toward the customer's own size is
                // always safe; going *below* it needs evidence.
                mtrace.disallow(AgentAction::SizeDown, "no-load-evidence");
            }
            // Analytic size floor from the learned latency scaler (§5.2):
            // each size step down multiplies latency by 2^(-slope); the
            // slider's tolerated p99 inflation bounds how many steps below
            // the original size can ever be acceptable.
            let slope = (-self.cost_model.latency.global_slope()).max(0.1);
            let allowed = self.setup.slider.backoff_latency_ratio();
            let steps_below = (allowed.log2() / slope).floor().max(0.0) as usize;
            let floor_idx = self
                .original_config
                .size
                .index()
                .saturating_sub(steps_below);
            if desc.config.size.index() <= floor_idx {
                mtrace.disallow(AgentAction::SizeDown, "slider-floor");
            }
            // Cost guardrail (the flip side of C4): while performance is
            // fine, never provision beyond the customer's own original
            // capacity — upside headroom is the monitoring back-off's job,
            // reserved for actual pressure.
            let orig = &self.original_config;
            if desc.config.size >= orig.size {
                mtrace.disallow(AgentAction::SizeUp, "cost-guardrail");
            }
            if desc.config.max_clusters >= orig.max_clusters {
                mtrace.disallow(AgentAction::ClustersUp, "cost-guardrail");
            }
            if desc.config.auto_suspend_ms >= orig.auto_suspend_ms {
                mtrace.disallow(AgentAction::AutoSuspendUp, "cost-guardrail");
            }
        }
        let mask = mtrace.mask;

        let credits_now = sim.account().accrued_credits(self.wh, now);
        let dropped_now = sim.account().warehouse(self.wh).dropped_queries();
        let mut tick_reward = None;
        if let Some((ps, pa)) = self.prev_state.take() {
            let perf = PerfSignals {
                mean_queue_s: rts.window.mean_queue_ms / 1000.0,
                latency_ratio: rts.latency_ratio,
                dropped_queries: dropped_now - self.prev_dropped,
            };
            let churn = if pa == AgentAction::NoOp.index() {
                0.0
            } else {
                agent::reward::ACTION_CHURN_PENALTY
            };
            let reward =
                agent::compute_reward(credits_now - self.prev_credits, &perf, self.setup.slider)
                    - churn;
            tick_reward = Some(reward);
            let transition = Transition {
                state: ps,
                action: pa,
                reward,
                next_state: state_vec.clone(),
                next_mask: mask,
                terminal: false,
            };
            let ts_seed: u64 = self.rng.gen();
            self.effects.transition = Some(transition.clone());
            self.effects.train_step_seed = Some(ts_seed);
            self.agent.observe(transition);
            let mut train_rng = StdRng::seed_from_u64(ts_seed);
            self.agent.train_step(&mut train_rng);
        }
        self.prev_credits = credits_now;
        self.prev_dropped = dropped_now;

        // Lines 18–20: pick the action — back-off overrides the policy.
        if rts.should_back_off {
            // §4.3: roll back to the last settings that performed well. If
            // no known-good config has more capacity than the current one,
            // fall back to the customer's original configuration — the one
            // state guaranteed not to be a Keebo-induced regression.
            let has_more_capacity = |c: &WarehouseConfig| {
                c.size > desc.config.size || c.max_clusters > desc.config.max_clusters
            };
            let above_original = desc.config.size > self.original_config.size
                || desc.config.max_clusters > self.original_config.max_clusters;
            let queue_pressure = rts.queue_depth >= 8 || rts.window.mean_queue_ms >= 5_000.0;
            let rollback = if above_original && !queue_pressure {
                // Already beyond the customer's own capacity and nothing is
                // queued: more capacity cannot be the answer. Return to the
                // original posture instead of escalating further.
                Some(self.original_config.clone())
            } else {
                self.last_good_config
                    .as_ref()
                    .filter(|good| has_more_capacity(good))
                    .cloned()
                    .or_else(|| {
                        Some(self.original_config.clone()).filter(|orig| has_more_capacity(orig))
                    })
            };
            let backoff_chosen;
            let backoff_reason;
            match rollback {
                Some(good) => {
                    let mut cmds = Vec::new();
                    if good.size != desc.config.size {
                        cmds.push(WarehouseCommand::SetSize(good.size));
                    }
                    if good.max_clusters != desc.config.max_clusters
                        || good.min_clusters != desc.config.min_clusters
                    {
                        cmds.push(WarehouseCommand::SetClusterRange {
                            min: good.min_clusters,
                            max: good.max_clusters,
                        });
                    }
                    // Auto-suspend is deliberately not rolled back: it is
                    // not capacity, and the cold-cache cost it implies is a
                    // one-shot the policy re-weighs on its own.
                    self.actuator.apply_commands(
                        sim,
                        self.wh,
                        &self.name,
                        &cmds,
                        LogEntryKind::Rollback,
                        "backoff-rollback",
                    );
                    self.reconciler
                        .set_desired(intended_config(desc.config.clone(), &cmds));
                    backoff_chosen = format!("Rollback(to {:?})", good.size);
                    backoff_reason = "backoff-rollback";
                }
                None => {
                    let action = backoff_action(&rts, &mask, self.last_action);
                    let cmds = action.to_commands(&desc.config);
                    self.actuator
                        .apply(sim, self.wh, &self.name, &desc.config, action, "backoff");
                    self.reconciler
                        .set_desired(intended_config(desc.config.clone(), &cmds));
                    backoff_chosen = format!("{action:?}");
                    backoff_reason = "backoff";
                }
            }
            self.expected_config = sim.account().describe(self.wh).config;
            self.last_action = None;
            // Back-off is a monitoring override, not a policy choice; no
            // transition is attributed to the model for it.
            self.prev_state = None;
            self.prev_credits = sim.account().accrued_credits(self.wh, now);
            let mask_entries = mtrace.entries();
            self.record_decision(
                now,
                health,
                &desc.config,
                &rts,
                mask_entries,
                backoff_chosen,
                backoff_reason,
                tick_reward,
            );
            return;
        }

        // Capacity decay: spike headroom granted by back-off drifts back to
        // the customer's original capacity after an hour of sustained
        // health, instead of waiting for the policy to rediscover it.
        self.healthy_streak = if perf_healthy {
            self.healthy_streak + 1
        } else {
            0
        };
        let streak_needed = (HOUR_MS / self.setup.realtime_interval_ms.max(1)).max(1) as u32;
        let mut decay = false;
        let action = if self.healthy_streak >= streak_needed
            && desc.config.size > self.original_config.size
            && mtrace.allows(AgentAction::SizeDown)
        {
            decay = true;
            AgentAction::SizeDown
        } else if self.healthy_streak >= streak_needed
            && desc.config.max_clusters > self.original_config.max_clusters
            && mtrace.allows(AgentAction::ClustersDown)
        {
            decay = true;
            AgentAction::ClustersDown
        } else {
            self.agent.greedy_action(&state_vec, &mask)
        };
        let cmds = action.to_commands(&desc.config);
        self.actuator
            .apply(sim, self.wh, &self.name, &desc.config, action, "policy");
        self.reconciler
            .set_desired(intended_config(desc.config.clone(), &cmds));
        self.expected_config = sim.account().describe(self.wh).config;
        if action != AgentAction::NoOp {
            self.last_action = Some(action);
        }
        self.prev_state = Some((state_vec, action.index()));
        let mask_entries = mtrace.entries();
        self.record_decision(
            now,
            health,
            &desc.config,
            &rts,
            mask_entries,
            format!("{action:?}"),
            if decay { "capacity-decay" } else { "policy" },
            tick_reward,
        );
    }

    /// Estimates savings for `[start, end)` per §5 (replay without-Keebo,
    /// subtract actual billed credits).
    pub fn savings_report(&self, sim: &Simulator, start: SimTime, end: SimTime) -> SavingsReport {
        let records = self.store.queries(&self.name);
        let billing = sim.account().ledger().warehouse(&self.name);
        estimate_savings(
            &self.cost_model,
            records,
            &billing,
            &ReplayConfig {
                original: self.original_config.clone(),
                window_start: start,
                window_end: end,
            },
        )
    }

    /// Every mutable control scalar/cursor, captured post-event for the WAL.
    fn export_ctl(&self) -> CtlState {
        CtlState {
            expected_config: self.expected_config.clone(),
            slider: self.setup.slider,
            onboarded: self.onboarded,
            last_train: self.last_train,
            last_action: self.last_action,
            prev_state: self.prev_state.clone(),
            prev_credits: self.prev_credits,
            prev_dropped: self.prev_dropped,
            paused_until: self.paused_until,
            baseline_p99_ms: self.baseline_p99_ms,
            events_cursor: self.events_cursor,
            last_good_config: self.last_good_config.clone(),
            pending_auto_suspend: self.pending_auto_suspend,
            healthy_streak: self.healthy_streak,
            rng: self.rng.clone(),
            monitor: self.monitor.clone(),
            fetcher: self.fetcher.clone(),
            reconciler: self.reconciler.clone(),
            health: self.health.clone(),
            actuator_cost_per_command: self.actuator.cost_per_command,
            actuator_max_transient_retries: self.actuator.max_transient_retries,
            actuator_transient_retries: self.actuator.transient_retries(),
        }
    }

    /// Imports a [`CtlState`] wholesale — the learning RNG, cursors, and
    /// backoff schedules land exactly where the exporter left them.
    fn import_ctl(&mut self, ctl: CtlState) {
        self.expected_config = ctl.expected_config;
        self.setup.slider = ctl.slider;
        self.onboarded = ctl.onboarded;
        self.last_train = ctl.last_train;
        self.last_action = ctl.last_action;
        self.prev_state = ctl.prev_state;
        self.prev_credits = ctl.prev_credits;
        self.prev_dropped = ctl.prev_dropped;
        self.paused_until = ctl.paused_until;
        self.baseline_p99_ms = ctl.baseline_p99_ms;
        self.events_cursor = ctl.events_cursor;
        self.last_good_config = ctl.last_good_config;
        self.pending_auto_suspend = ctl.pending_auto_suspend;
        self.healthy_streak = ctl.healthy_streak;
        self.rng = ctl.rng;
        self.monitor = ctl.monitor;
        self.fetcher = ctl.fetcher;
        self.reconciler = ctl.reconciler;
        self.health = ctl.health;
        self.actuator.cost_per_command = ctl.actuator_cost_per_command;
        self.actuator.max_transient_retries = ctl.actuator_max_transient_retries;
        self.actuator
            .set_transient_retries(ctl.actuator_transient_retries);
    }

    /// Everything needed to rebuild this optimizer without replaying its
    /// history (the decision trace is deliberately excluded).
    fn export_snapshot(&self) -> OptimizerSnapshot {
        OptimizerSnapshot {
            name: self.name.clone(),
            original_config: self.original_config.clone(),
            setup: self.setup.clone(),
            agent: self.agent.export_state(),
            cost_model: self.cost_model.clone(),
            telemetry: self.store.clone(),
            actuator_log: self.actuator.log().to_vec(),
            ctl: self.export_ctl(),
        }
    }

    /// Rebuilds an optimizer from a snapshot against the surviving
    /// simulator (which still knows the warehouse by name).
    fn from_snapshot(snap: OptimizerSnapshot, sim: &Simulator) -> Result<Self, PersistError> {
        let wh = sim.account().warehouse_id(&snap.name).ok_or_else(|| {
            PersistError::Corrupt(format!(
                "snapshot references warehouse {} absent from the simulator",
                snap.name
            ))
        })?;
        let agent = DqnAgent::from_state(snap.agent).map_err(PersistError::Corrupt)?;
        let mut o = WarehouseOptimizer::new(wh, snap.name, snap.original_config, snap.setup, 0);
        o.agent = agent;
        o.cost_model = snap.cost_model;
        o.store = snap.telemetry;
        o.actuator = Actuator::new();
        o.actuator.extend_log(snap.actuator_log);
        o.import_ctl(snap.ctl);
        Ok(o)
    }

    /// Builds the WAL record for the tick that just ran. `log_from` is the
    /// actuator-log length captured before the tick.
    fn tick_record(&self, now: SimTime, log_from: usize) -> PersistRecord {
        PersistRecord::Tick {
            warehouse: self.name.clone(),
            now,
            fetched: self.effects.fetched,
            retrain: self.effects.retrain,
            transition: self.effects.transition.clone(),
            train_step_seed: self.effects.train_step_seed,
            log_delta: self.actuator.log()[log_from..].to_vec(),
            ctl: self.export_ctl(),
        }
    }

    /// Replays one logged tick. Re-ingests telemetry by cursor range and
    /// re-runs training with the recorded seeds, but never touches the
    /// account (fetch overhead and ALTERs already happened before the
    /// crash) and never advances the live RNG — the final `import_ctl`
    /// restores every control scalar, RNG included, to the post-tick state.
    #[allow(clippy::too_many_arguments)]
    fn replay_tick(
        &mut self,
        sim: &Simulator,
        now: SimTime,
        fetched: bool,
        retrain: Option<RetrainRecord>,
        transition: Option<Transition>,
        train_step_seed: Option<u64>,
        log_delta: Vec<ActionLogEntry>,
        ctl: CtlState,
    ) {
        if fetched {
            let (q0, e0) = self.fetcher.cursors();
            let (q1, e1) = ctl.fetcher.cursors();
            let account = sim.account();
            let queries = account.query_records();
            let events = account.event_records();
            // Clamp defensively: a corrupt record must degrade, not panic.
            let q0 = q0.min(queries.len());
            let q1 = q1.min(queries.len()).max(q0);
            let e0 = e0.min(events.len());
            let e1 = e1.min(events.len()).max(e0);
            self.store.ingest_queries(queries[q0..q1].iter().cloned());
            self.store.ingest_events(events[e0..e1].iter().cloned());
            let names: Vec<String> = account
                .ledger()
                .warehouse_names()
                .map(str::to_string)
                .collect();
            for name in names {
                let credits = account.ledger().warehouse(&name);
                self.store.set_billing(&name, credits);
            }
            self.store.note_fetch_success(now);
        }
        if let Some(rt) = retrain {
            self.train_with(now, rt.episodes, rt.seed);
        }
        if let (Some(t), Some(seed)) = (transition, train_step_seed) {
            self.agent.observe(t);
            let mut train_rng = StdRng::seed_from_u64(seed);
            self.agent.train_step(&mut train_rng);
        }
        self.actuator.extend_log(log_delta);
        self.import_ctl(ctl);
    }
}

/// The conservative action monitoring substitutes when backing off: undo the
/// last cost-cutting move if it has an inverse; otherwise add capacity
/// (clusters first for queueing, then size).
fn backoff_action(
    rts: &RealTimeState,
    mask: &[bool; AgentAction::COUNT],
    last_action: Option<AgentAction>,
) -> AgentAction {
    if let Some(inv) = last_action.and_then(AgentAction::inverse) {
        if mask[inv.index()] && is_capacity_increasing(inv) {
            return inv;
        }
    }
    let preferences = if rts.queue_depth > 0 || rts.window.mean_queue_ms > 0.0 {
        [
            AgentAction::ClustersUp,
            AgentAction::SizeUp,
            AgentAction::AutoSuspendUp,
        ]
    } else {
        [
            AgentAction::SizeUp,
            AgentAction::ClustersUp,
            AgentAction::AutoSuspendUp,
        ]
    };
    preferences
        .into_iter()
        .find(|a| mask[a.index()])
        .unwrap_or(AgentAction::NoOp)
}

fn is_capacity_increasing(a: AgentAction) -> bool {
    matches!(
        a,
        AgentAction::SizeUp | AgentAction::ClustersUp | AgentAction::AutoSuspendUp
    )
}

/// Default snapshot cadence: one full snapshot every 48 control ticks
/// (a day at the 30-minute cadence) compacts the WAL and bounds replay.
pub const DEFAULT_SNAPSHOT_INTERVAL_TICKS: u64 = 48;

/// Extra in-line attempts before giving up on a store operation. Transient
/// remote faults (the injected kind and the real kind) usually clear on the
/// next request; a handful of retries keeps the store attached through them.
const STORE_APPEND_ATTEMPTS: u32 = 4;
const STORE_SNAPSHOT_ATTEMPTS: u32 = 3;
const STORE_LOAD_ATTEMPTS: u32 = 6;

/// Coordinates one optimizer per managed warehouse.
pub struct Orchestrator {
    optimizers: Vec<WarehouseOptimizer>,
    seed: u64,
    /// Durable state store; `None` runs in-memory only (the default).
    store: Option<Box<dyn StateStore>>,
    /// Explicit compaction policy; `None` folds the managed setups'
    /// per-warehouse policies (tightest trigger wins).
    policy_override: Option<SnapshotPolicy>,
    /// Trigger clock: ticks since the last snapshot *attempt window* was
    /// satisfied. Not reset by failed writes, so the next tick re-triggers.
    ticks_since_snapshot: u64,
    /// Age gauge clock: ticks since a snapshot actually landed.
    ticks_since_good_snapshot: u64,
}

impl Orchestrator {
    /// Creates an orchestrator; `seed` drives all learning randomness.
    pub fn new(seed: u64) -> Self {
        Self {
            optimizers: Vec::new(),
            seed,
            store: None,
            policy_override: None,
            ticks_since_snapshot: 0,
            ticks_since_good_snapshot: 0,
        }
    }

    /// Attaches a durable state store, journals a genesis record, and
    /// immediately writes a full snapshot, so attaching mid-run is safe:
    /// recovery never needs records from before the store existed. The
    /// genesis record makes the store recoverable even if every snapshot
    /// write fails (injected or real): [`Self::restore`] can rebuild from
    /// `Orchestrator::new(seed)` plus the full WAL. From here on every
    /// control event is appended to the WAL and compaction follows the
    /// effective [`SnapshotPolicy`].
    ///
    /// Persistence is fail-open and failures are graded by what they cost:
    /// transient append/snapshot errors are retried in line and counted
    /// (`keebo.store.append_errors` / `keebo.store.snapshot_errors`); a
    /// snapshot that keeps failing leaves the store attached (the WAL still
    /// holds every record, so nothing is lost — compaction retries at the
    /// next trigger); an append that exhausts its retries detaches the
    /// store (`keebo.store.detached`) because a hole in the WAL would
    /// poison replay.
    pub fn attach_store(&mut self, store: Box<dyn StateStore>, at: SimTime) {
        self.store = Some(store);
        self.ticks_since_snapshot = 0;
        self.ticks_since_good_snapshot = 0;
        self.persist_append(&PersistRecord::Genesis {
            seed: self.seed,
            at,
        });
        self.snapshot_now(at);
    }

    /// Whether a durable store is currently attached (fail-open errors
    /// detach it).
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Snapshot cadence in control ticks; 0 disables periodic snapshots
    /// (the WAL then grows until [`Self::restore`] compacts it). Shorthand
    /// for a [`Self::set_snapshot_policy`] override with only the age
    /// trigger set.
    pub fn set_snapshot_interval_ticks(&mut self, ticks: u64) {
        self.set_snapshot_policy(SnapshotPolicy {
            interval_ticks: ticks,
            ..SnapshotPolicy::default()
        });
    }

    /// Overrides the store-level compaction policy. Without an override the
    /// policy folds every managed setup's `snapshot_policy` (tightest
    /// trigger wins, largest retention wins).
    pub fn set_snapshot_policy(&mut self, policy: SnapshotPolicy) {
        self.policy_override = Some(policy);
    }

    /// The compaction policy currently in force.
    pub fn effective_policy(&self) -> SnapshotPolicy {
        if let Some(p) = self.policy_override {
            return p;
        }
        let mut iter = self.optimizers.iter().map(|o| o.setup.snapshot_policy);
        let Some(first) = iter.next() else {
            return SnapshotPolicy::default();
        };
        iter.fold(first, SnapshotPolicy::merge)
    }

    /// Appends one record to the WAL, fail-open. Transient store errors are
    /// retried in line; exhausting the retries detaches the store, because
    /// a WAL missing one record can never replay correctly.
    fn persist_append(&mut self, record: &PersistRecord) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        let obs = keebo_obs::global();
        let bytes = match persist::encode_record(record) {
            Ok(bytes) => bytes,
            Err(_) => {
                obs.counter("keebo.store.append_errors").inc();
                obs.counter("keebo.store.detached").inc();
                self.store = None;
                return;
            }
        };
        for _ in 0..STORE_APPEND_ATTEMPTS {
            if store.append(&bytes).is_ok() {
                return;
            }
            obs.counter("keebo.store.append_errors").inc();
        }
        obs.counter("keebo.store.detached").inc();
        self.store = None;
    }

    /// Writes a full snapshot and truncates the WAL, fail-open. A snapshot
    /// write that keeps failing is *not* fatal: the WAL already holds every
    /// record, so the store stays attached and compaction retries at the
    /// next trigger. Returns whether a snapshot landed.
    fn snapshot_now(&mut self, at: SimTime) -> bool {
        if self.store.is_none() {
            return false;
        }
        let retain = self.effective_policy().retain_snapshots;
        let snap = SnapshotState {
            version: persist::FORMAT_VERSION,
            seed: self.seed,
            at,
            optimizers: self
                .optimizers
                .iter()
                .map(|o| o.export_snapshot())
                .collect(),
        };
        let obs = keebo_obs::global();
        let bytes = match persist::encode_snapshot(&snap) {
            Ok(bytes) => bytes,
            Err(_) => {
                // An unencodable snapshot is a code bug, not a transient
                // store fault: no retry can help, so detach.
                obs.counter("keebo.store.snapshot_errors").inc();
                obs.counter("keebo.store.detached").inc();
                self.store = None;
                return false;
            }
        };
        let Some(store) = self.store.as_mut() else {
            return false;
        };
        store.set_snapshot_retention(retain);
        for _ in 0..STORE_SNAPSHOT_ATTEMPTS {
            if store.write_snapshot(&bytes).is_ok() {
                self.ticks_since_snapshot = 0;
                self.ticks_since_good_snapshot = 0;
                obs.gauge("keebo.store.snapshot_age_ticks").set(0.0);
                return true;
            }
            obs.counter("keebo.store.snapshot_errors").inc();
        }
        false
    }

    /// Per-global-tick snapshot bookkeeping: advances the age clocks and
    /// fires compaction when any [`SnapshotPolicy`] trigger is met.
    fn note_persisted_tick(&mut self, at: SimTime) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        self.ticks_since_snapshot += 1;
        self.ticks_since_good_snapshot += 1;
        keebo_obs::global()
            .gauge("keebo.store.snapshot_age_ticks")
            .set(self.ticks_since_good_snapshot as f64);
        let policy = self.effective_policy();
        let age_due =
            policy.interval_ticks > 0 && self.ticks_since_snapshot >= policy.interval_ticks;
        let bytes_due = policy.max_wal_bytes > 0 && store.wal_bytes() >= policy.max_wal_bytes;
        let records_due =
            policy.max_wal_records > 0 && store.wal_records() >= policy.max_wal_records;
        if age_due || bytes_due || records_due {
            self.snapshot_now(at);
        }
    }

    /// Starts managing a warehouse. Its *current* configuration becomes the
    /// original (without-Keebo) reference.
    ///
    /// # Panics
    /// Panics if the warehouse does not exist or is already managed; use
    /// [`Orchestrator::try_manage`] for a non-panicking variant.
    pub fn manage(&mut self, sim: &Simulator, warehouse: &str, setup: KwoSetup) {
        if let Err(e) = self.try_manage(sim, warehouse, setup) {
            // lint: allow(D5) — documented panicking wrapper; try_manage is the fallible path
            panic!("{e}");
        }
    }

    /// Starts managing a warehouse, rejecting duplicates instead of creating
    /// a second optimizer that would fight the first over one warehouse
    /// (with [`Orchestrator::optimizer`] only ever returning the first).
    pub fn try_manage(
        &mut self,
        sim: &Simulator,
        warehouse: &str,
        setup: KwoSetup,
    ) -> Result<(), ManageError> {
        let wh = sim
            .account()
            .warehouse_id(warehouse)
            .ok_or_else(|| ManageError::UnknownWarehouse(warehouse.to_string()))?;
        if self.optimizer(warehouse).is_some() {
            return Err(ManageError::AlreadyManaged(warehouse.to_string()));
        }
        let original = sim.account().describe(wh).config;
        // The learning seed derives from the warehouse *name*, not the
        // manage order: managing A then B gives each warehouse the same
        // stream as managing it alone.
        let seed = derive_stream_seed(self.seed, warehouse);
        self.optimizers.push(WarehouseOptimizer::new(
            wh,
            warehouse.to_string(),
            original.clone(),
            setup.clone(),
            seed,
        ));
        if self.store.is_some() {
            let record = PersistRecord::Manage {
                warehouse: warehouse.to_string(),
                original_config: original,
                setup,
            };
            self.persist_append(&record);
        }
        Ok(())
    }

    /// Borrow an optimizer by warehouse name.
    pub fn optimizer(&self, warehouse: &str) -> Option<&WarehouseOptimizer> {
        self.optimizers.iter().find(|o| o.name == warehouse)
    }

    /// All managed optimizers, in manage order (fleet rollups iterate this).
    pub fn optimizers(&self) -> &[WarehouseOptimizer] {
        &self.optimizers
    }

    fn optimizer_mut(&mut self, warehouse: &str) -> Option<&mut WarehouseOptimizer> {
        self.optimizers.iter_mut().find(|o| o.name == warehouse)
    }

    /// Changes a warehouse's slider (takes effect at the next decision).
    pub fn set_slider(&mut self, warehouse: &str, slider: SliderPosition) {
        let Some(o) = self.optimizer_mut(warehouse) else {
            return;
        };
        o.set_slider(slider);
        if self.store.is_some() {
            let record = PersistRecord::SliderChanged {
                warehouse: warehouse.to_string(),
                slider,
            };
            self.persist_append(&record);
        }
    }

    /// Adds a constraint rule to a warehouse's rule set ("users can specify
    /// conditions/constraints that must be always met", §4.3). The rule
    /// applies from the next decision's action mask; like
    /// [`Orchestrator::set_slider`] it journals when a store is attached.
    pub fn add_constraint(&mut self, warehouse: &str, rule: Rule) {
        let Some(o) = self.optimizer_mut(warehouse) else {
            return;
        };
        o.setup.constraints.add(rule.clone());
        if self.store.is_some() {
            let record = PersistRecord::ConstraintAdded {
                warehouse: warehouse.to_string(),
                rule,
            };
            self.persist_append(&record);
        }
    }

    /// Clears an external-change pause ("the admin explicitly asks the
    /// optimizations to continue", §4.4).
    pub fn admin_resume(&mut self, sim: &Simulator, warehouse: &str) {
        let Some(o) = self.optimizer_mut(warehouse) else {
            return;
        };
        o.paused_until = None;
        o.expected_config = sim.account().describe(o.wh).config;
        let expected = o.expected_config.clone();
        if self.store.is_some() {
            let record = PersistRecord::AdminResume {
                warehouse: warehouse.to_string(),
                expected_config: expected,
            };
            self.persist_append(&record);
        }
    }

    /// Observation mode: advance time, collecting telemetry without taking
    /// any action (pre-onboarding history building).
    pub fn observe_until(&mut self, sim: &mut Simulator, until: SimTime) {
        self.advance(sim, until);
    }

    /// Trains every optimizer on the telemetry collected so far and enables
    /// optimization. Persisted as one Tick record per optimizer (onboarding
    /// is a fetch + train, exactly what a tick record can replay).
    pub fn onboard(&mut self, sim: &mut Simulator) {
        let now = sim.now();
        for i in 0..self.optimizers.len() {
            let log_from = self.optimizers[i].actuator.log().len();
            {
                let o = &mut self.optimizers[i];
                o.effects = TickEffects::default();
                o.effects.fetched = o.fetch(sim);
                let episodes = o.setup.onboarding_episodes;
                let seed = o.train(now, episodes);
                o.effects.retrain = Some(RetrainRecord { episodes, seed });
                o.onboarded = true;
            }
            if self.store.is_some() {
                let record = self.optimizers[i].tick_record(now, log_from);
                self.persist_append(&record);
            }
        }
    }

    /// The main loop: advance to `until`, ticking every optimizer at its
    /// own `T_realtime` cadence.
    pub fn run_until(&mut self, sim: &mut Simulator, until: SimTime) {
        self.advance(sim, until);
    }

    fn advance(&mut self, sim: &mut Simulator, until: SimTime) {
        assert!(!self.optimizers.is_empty(), "no warehouses managed");
        // All optimizers share a global tick at the minimum cadence; each
        // fires when its own interval divides the tick time.
        let Some(tick) = self
            .optimizers
            .iter()
            .map(|o| o.setup.realtime_interval_ms)
            .min()
        else {
            sim.run_until(until);
            return;
        };
        let mut t = (sim.now() / tick + 1) * tick;
        while t <= until {
            sim.run_until(t);
            for i in 0..self.optimizers.len() {
                if !t.is_multiple_of(self.optimizers[i].setup.realtime_interval_ms) {
                    continue;
                }
                let log_from = self.optimizers[i].actuator.log().len();
                self.optimizers[i].tick(sim);
                if self.store.is_some() {
                    let record = self.optimizers[i].tick_record(t, log_from);
                    self.persist_append(&record);
                }
            }
            self.note_persisted_tick(t);
            t += tick;
        }
        sim.run_until(until);
    }

    /// Savings report for one warehouse over a window.
    pub fn savings_report(
        &self,
        sim: &Simulator,
        warehouse: &str,
        start: SimTime,
        end: SimTime,
    ) -> SavingsReport {
        self.optimizer(warehouse)
            // lint: allow(D5) — reporting on an unmanaged warehouse is a caller bug worth aborting
            .unwrap_or_else(|| panic!("unknown warehouse {warehouse}"))
            .savings_report(sim, start, end)
    }

    /// Rebuilds a warm orchestrator from a durable store: loads the latest
    /// snapshot, replays every WAL record on top, re-attaches the store, and
    /// compacts (the recovered state becomes the new snapshot baseline).
    ///
    /// The simulator is the *surviving* warehouse side of the crash — only
    /// the control plane died — so replay resolves warehouses by name
    /// against it and re-reads telemetry by cursor range, but never charges
    /// it or re-issues ALTERs.
    ///
    /// A clean crash (at a tick boundary, after the append) recovers
    /// bit-identically; a torn WAL tail loses at most the last unflushed
    /// record and is reported in [`RecoveryStats::wal_truncated_bytes`].
    pub fn restore(
        mut store: Box<dyn StateStore>,
        sim: &Simulator,
    ) -> Result<(Self, RecoveryStats), PersistError> {
        // lint: allow(D1) — recovery wall time is reported, never decided on
        let t0 = Instant::now();
        let obs = keebo_obs::global();
        // A remote store can time out transiently; retry the load a bounded
        // number of times (counted) before giving up.
        let contents = {
            let mut attempt = 0;
            loop {
                match store.load() {
                    Ok(c) => break c,
                    Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                        obs.counter("keebo.store.read_timeouts").inc();
                        attempt += 1;
                        if attempt >= STORE_LOAD_ATTEMPTS {
                            return Err(e.into());
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };
        let snapshot_len = contents.snapshot.as_ref().map_or(0, |s| s.len() as u64);
        let (mut orch, replay_from) = match &contents.snapshot {
            Some(snapshot_bytes) => {
                let snap = persist::decode_snapshot(snapshot_bytes)?;
                let mut orch = Orchestrator::new(snap.seed);
                for osnap in snap.optimizers {
                    let o = WarehouseOptimizer::from_snapshot(osnap, sim)?;
                    orch.optimizers.push(o);
                }
                (orch, 0)
            }
            None => {
                // No snapshot ever landed (every write failed, fail-open).
                // The WAL must then start at a genesis record, which is the
                // empty-orchestrator starting point replay needs.
                let first = contents.records.first().ok_or_else(|| {
                    PersistError::Corrupt(
                        "state store is empty (attach_store journals a genesis record; \
                         nothing to restore)"
                            .to_string(),
                    )
                })?;
                match persist::decode_record(first)? {
                    PersistRecord::Genesis { seed, .. } => (Orchestrator::new(seed), 1),
                    _ => {
                        return Err(PersistError::Corrupt(
                            "state store has no snapshot and its WAL does not start with a \
                             genesis record"
                                .to_string(),
                        ))
                    }
                }
            }
        };
        let mut replayed_records = replay_from as u64;
        for bytes in &contents.records[replay_from..] {
            let record = persist::decode_record(bytes)?;
            orch.apply_record(record, sim)?;
            replayed_records += 1;
        }
        orch.store = Some(store);
        // Compact: recovered state becomes the new snapshot baseline, so a
        // second crash never replays this WAL again.
        orch.snapshot_now(sim.now());
        obs.counter("keebo.store.recoveries_total").inc();
        obs.counter("keebo.store.wal_truncated_bytes")
            .add(contents.truncated_bytes);
        let stats = RecoveryStats {
            replayed_records,
            wal_truncated_bytes: contents.truncated_bytes,
            snapshot_bytes: snapshot_len,
            recovery_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
        Ok((orch, stats))
    }

    /// Applies one replayed WAL record.
    fn apply_record(&mut self, record: PersistRecord, sim: &Simulator) -> Result<(), PersistError> {
        match record {
            PersistRecord::Genesis { .. } => {
                // Genesis is only valid as the very first record of a
                // snapshot-less store, and restore() consumes it before the
                // replay loop — reaching here means the WAL is malformed.
                return Err(PersistError::Corrupt(
                    "genesis record mid-stream (only valid as the first record of a \
                     snapshot-less store)"
                        .to_string(),
                ));
            }
            PersistRecord::Manage {
                warehouse,
                original_config,
                setup,
            } => {
                let wh = sim.account().warehouse_id(&warehouse).ok_or_else(|| {
                    PersistError::Corrupt(format!(
                        "manage record references warehouse {warehouse} absent from the simulator"
                    ))
                })?;
                if self.optimizer(&warehouse).is_some() {
                    return Err(PersistError::Corrupt(format!(
                        "duplicate manage record for {warehouse}"
                    )));
                }
                let seed = derive_stream_seed(self.seed, &warehouse);
                self.optimizers.push(WarehouseOptimizer::new(
                    wh,
                    warehouse,
                    original_config,
                    setup,
                    seed,
                ));
            }
            PersistRecord::Tick {
                warehouse,
                now,
                fetched,
                retrain,
                transition,
                train_step_seed,
                log_delta,
                ctl,
            } => {
                let o = self.optimizer_mut(&warehouse).ok_or_else(|| {
                    PersistError::Corrupt(format!(
                        "tick record for unmanaged warehouse {warehouse}"
                    ))
                })?;
                o.replay_tick(
                    sim,
                    now,
                    fetched,
                    retrain,
                    transition,
                    train_step_seed,
                    log_delta,
                    ctl,
                );
            }
            PersistRecord::SliderChanged { warehouse, slider } => {
                let o = self.optimizer_mut(&warehouse).ok_or_else(|| {
                    PersistError::Corrupt(format!(
                        "slider record for unmanaged warehouse {warehouse}"
                    ))
                })?;
                o.set_slider(slider);
            }
            PersistRecord::ConstraintAdded { warehouse, rule } => {
                let o = self.optimizer_mut(&warehouse).ok_or_else(|| {
                    PersistError::Corrupt(format!(
                        "constraint record for unmanaged warehouse {warehouse}"
                    ))
                })?;
                o.setup.constraints.add(rule);
            }
            PersistRecord::AdminResume {
                warehouse,
                expected_config,
            } => {
                let o = self.optimizer_mut(&warehouse).ok_or_else(|| {
                    PersistError::Corrupt(format!(
                        "admin-resume record for unmanaged warehouse {warehouse}"
                    ))
                })?;
                o.paused_until = None;
                o.expected_config = expected_config;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{Account, FaultPlan, QuerySpec, WarehouseSize};

    fn idle_heavy_sim() -> (Simulator, WarehouseId) {
        idle_heavy_sim_with(FaultPlan::none())
    }

    fn idle_heavy_sim_with(plan: FaultPlan) -> (Simulator, WarehouseId) {
        let mut account = Account::new();
        let wh = account.create_warehouse(
            "WH",
            WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
        );
        let mut sim = Simulator::with_faults(account, plan, 0);
        // 4 days of hourly 30-second queries: mostly idle.
        for h in 0..(4 * 24) {
            sim.submit_query(
                wh,
                QuerySpec::builder(h)
                    .work_ms_xs(30_000.0)
                    .cache_affinity(0.2)
                    .arrival_ms(h * HOUR_MS + 7 * MINUTE_MS)
                    .build(),
            );
        }
        (sim, wh)
    }

    fn fast_setup() -> KwoSetup {
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 2,
            refresh_episodes: 0,
            train_interval_ms: 2 * DAY_MS,
            ..KwoSetup::default()
        }
    }

    #[test]
    fn observation_mode_takes_no_actions() {
        let (mut sim, _) = idle_heavy_sim();
        let mut kwo = Orchestrator::new(1);
        kwo.manage(&sim, "WH", fast_setup());
        kwo.observe_until(&mut sim, DAY_MS);
        let o = kwo.optimizer("WH").unwrap();
        assert_eq!(o.actuator().log().len(), 0);
        assert!(o.store().total_queries() > 0, "telemetry still collected");
    }

    #[test]
    fn onboarding_trains_models() {
        let (mut sim, _) = idle_heavy_sim();
        let mut kwo = Orchestrator::new(1);
        kwo.manage(&sim, "WH", fast_setup());
        kwo.observe_until(&mut sim, DAY_MS);
        kwo.onboard(&mut sim);
        let o = kwo.optimizer("WH").unwrap();
        assert!(o.onboarded);
        assert!(o.cost_model().gaps.dependent_fraction >= 0.0);
        assert!(o.baseline_p99_ms > 1.0);
    }

    #[test]
    fn optimization_reduces_spend_on_idle_heavy_warehouse() {
        let (mut sim, wh) = idle_heavy_sim();
        let mut kwo = Orchestrator::new(7);
        kwo.manage(&sim, "WH", fast_setup());
        // Day 1–2: observe. Onboard. Day 3–4: optimize.
        kwo.observe_until(&mut sim, 2 * DAY_MS);
        kwo.onboard(&mut sim);
        let credits_before = sim.account().accrued_credits(wh, sim.now());
        kwo.run_until(&mut sim, 4 * DAY_MS);
        let credits_after = sim.account().accrued_credits(wh, sim.now());
        let with_keebo = credits_after - credits_before;
        // Without Keebo the warehouse burns ~8 credits/hour * 48h ≈ 384.
        let without = 8.0 * 48.0;
        assert!(
            with_keebo < without * 0.9,
            "with-Keebo 2-day spend {with_keebo:.1} should undercut static {without:.1}"
        );
        let o = kwo.optimizer("WH").unwrap();
        assert!(o.actuator().applied_count() > 0, "actions were taken");
    }

    #[test]
    fn external_change_pauses_and_admin_resume_unpauses() {
        let (mut sim, wh) = idle_heavy_sim();
        let mut kwo = Orchestrator::new(3);
        kwo.manage(&sim, "WH", fast_setup());
        kwo.observe_until(&mut sim, DAY_MS);
        kwo.onboard(&mut sim);
        kwo.run_until(&mut sim, DAY_MS + 2 * HOUR_MS);
        // An external admin resizes the warehouse behind Keebo's back.
        sim.alter_warehouse(
            wh,
            cdw_sim::WarehouseCommand::SetSize(WarehouseSize::X4Large),
            cdw_sim::ActionSource::External,
        )
        .unwrap();
        kwo.run_until(&mut sim, DAY_MS + 4 * HOUR_MS);
        let o = kwo.optimizer("WH").unwrap();
        assert!(
            o.is_paused(sim.now()),
            "external change pauses optimization"
        );
        assert!(
            o.reconciler().desired().is_none(),
            "external config becomes the truth; intent is dropped"
        );
        let actions_at_pause = o.actuator().log().len();
        kwo.run_until(&mut sim, DAY_MS + 8 * HOUR_MS);
        assert_eq!(
            kwo.optimizer("WH").unwrap().actuator().log().len(),
            actions_at_pause,
            "no actions while paused"
        );
        kwo.admin_resume(&sim, "WH");
        assert!(!kwo.optimizer("WH").unwrap().is_paused(sim.now()));
    }

    #[test]
    fn savings_report_compares_replay_to_actuals() {
        let (mut sim, _) = idle_heavy_sim();
        let mut kwo = Orchestrator::new(7);
        kwo.manage(
            &sim,
            "WH",
            KwoSetup {
                slider: SliderPosition::LowestCost,
                onboarding_episodes: 6,
                ..fast_setup()
            },
        );
        kwo.observe_until(&mut sim, 2 * DAY_MS);
        kwo.onboard(&mut sim);
        kwo.run_until(&mut sim, 4 * DAY_MS);
        let report = kwo.savings_report(&sim, "WH", 2 * DAY_MS, 4 * DAY_MS);
        assert!(report.estimated_without_keebo > 0.0);
        assert!(report.actual_with_keebo > 0.0);
        assert!(
            report.estimated_savings > 0.0,
            "KWO should save on this workload: {report:?}"
        );
    }

    #[test]
    fn telemetry_outage_degrades_and_blocks_retraining() {
        // A 6-hour metadata outage starting mid-optimization.
        let outage_from = 2 * DAY_MS + 4 * HOUR_MS;
        let outage_until = outage_from + 6 * HOUR_MS;
        let (mut sim, _) =
            idle_heavy_sim_with(FaultPlan::none().with_telemetry_outage(outage_from, outage_until));
        let mut kwo = Orchestrator::new(11);
        kwo.manage(
            &sim,
            "WH",
            KwoSetup {
                // Retrain cadence that lands inside the outage window.
                train_interval_ms: DAY_MS,
                ..fast_setup()
            },
        );
        kwo.observe_until(&mut sim, 2 * DAY_MS);
        kwo.onboard(&mut sim);
        kwo.run_until(&mut sim, outage_until + HOUR_MS);
        let o = kwo.optimizer("WH").unwrap();
        assert!(o.fetcher().stats().failed_fetches > 0, "outage was hit");
        assert!(
            o.health().degraded_ticks() > 0,
            "stale telemetry degraded the optimizer"
        );
        assert!(
            !(outage_from + o.setup.health.stale_telemetry_after_ms..outage_until)
                .contains(&o.last_train),
            "no retraining on stale data inside the outage"
        );
        // After the outage clears, health recovers on its own.
        kwo.run_until(&mut sim, outage_until + 3 * HOUR_MS);
        let o = kwo.optimizer("WH").unwrap();
        assert_eq!(o.health().state(), crate::health::HealthState::Healthy);
    }

    #[test]
    fn alter_burst_drives_reconciler_and_recovery() {
        // Every ALTER fails for 12 hours starting shortly after onboarding.
        let burst_from = 2 * DAY_MS + HOUR_MS;
        let burst_until = burst_from + 12 * HOUR_MS;
        let (mut sim, wh) =
            idle_heavy_sim_with(FaultPlan::none().with_alter_burst(burst_from, burst_until, 1.0));
        let mut kwo = Orchestrator::new(5);
        kwo.manage(&sim, "WH", fast_setup());
        kwo.observe_until(&mut sim, 2 * DAY_MS);
        kwo.onboard(&mut sim);
        kwo.run_until(&mut sim, 4 * DAY_MS);
        let o = kwo.optimizer("WH").unwrap();
        assert!(
            o.actuator().failure_count() > 0,
            "the burst produced failed actuations"
        );
        assert!(
            o.actuator().transient_retries() > 0,
            "transient errors were retried in-line"
        );
        // Well after the burst the reconciler has converged the config back
        // onto the recorded intent and health is clean again.
        assert_eq!(o.reconciler().consecutive_failures(), 0);
        if let Some(want) = o.reconciler().desired() {
            assert!(
                Reconciler::drift_commands(want, &sim.account().describe(wh).config).is_empty(),
                "reconciler converged after the burst"
            );
        }
        assert_eq!(o.health().state(), crate::health::HealthState::Healthy);
    }

    #[test]
    #[should_panic(expected = "unknown warehouse")]
    fn managing_unknown_warehouse_panics() {
        let account = Account::new();
        let sim = Simulator::new(account);
        let mut kwo = Orchestrator::new(1);
        kwo.manage(&sim, "NOPE", KwoSetup::default());
    }

    #[test]
    #[should_panic(expected = "already managed")]
    fn double_manage_panics() {
        let (sim, _) = idle_heavy_sim();
        let mut kwo = Orchestrator::new(1);
        kwo.manage(&sim, "WH", KwoSetup::default());
        kwo.manage(&sim, "WH", KwoSetup::default());
    }

    #[test]
    fn try_manage_rejects_duplicates_without_panicking() {
        let (sim, _) = idle_heavy_sim();
        let mut kwo = Orchestrator::new(1);
        assert_eq!(kwo.try_manage(&sim, "WH", KwoSetup::default()), Ok(()));
        assert_eq!(
            kwo.try_manage(&sim, "WH", KwoSetup::default()),
            Err(ManageError::AlreadyManaged("WH".to_string()))
        );
        assert_eq!(
            kwo.try_manage(&sim, "NOPE", KwoSetup::default()),
            Err(ManageError::UnknownWarehouse("NOPE".to_string()))
        );
        // The rejected duplicate left no second optimizer behind.
        assert_eq!(kwo.optimizers().len(), 1);
    }

    #[test]
    fn stream_seed_depends_on_name_not_order() {
        assert_eq!(
            derive_stream_seed(42, "WH_A"),
            derive_stream_seed(42, "WH_A")
        );
        assert_ne!(
            derive_stream_seed(42, "WH_A"),
            derive_stream_seed(42, "WH_B")
        );
        assert_ne!(
            derive_stream_seed(42, "WH_A"),
            derive_stream_seed(43, "WH_A")
        );
    }

    /// Two warehouses sharing one account + queue, each with its own hourly
    /// query stream at staggered offsets.
    fn two_warehouse_sim() -> (Simulator, WarehouseId, WarehouseId) {
        let mut account = Account::new();
        let wh_a = account.create_warehouse(
            "WH_A",
            WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
        );
        let wh_b = account.create_warehouse(
            "WH_B",
            WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(1800),
        );
        let mut sim = Simulator::new(account);
        for h in 0..(4 * 24) {
            sim.submit_query(
                wh_a,
                QuerySpec::builder(h)
                    .work_ms_xs(30_000.0)
                    .cache_affinity(0.2)
                    .arrival_ms(h * HOUR_MS + 7 * MINUTE_MS)
                    .build(),
            );
            sim.submit_query(
                wh_b,
                QuerySpec::builder(10_000 + h)
                    .work_ms_xs(12_000.0)
                    .cache_affinity(0.8)
                    .arrival_ms(h * HOUR_MS + 23 * MINUTE_MS)
                    .build(),
            );
        }
        (sim, wh_a, wh_b)
    }

    #[test]
    fn managed_together_equals_managed_alone() {
        // C5 isolation: WH_A's decisions and spend must be bit-identical
        // whether it is the orchestrator's only warehouse or shares the
        // orchestrator with WH_B. Seeds derive from names, faults are off,
        // and warehouses share no compute, so there is no cross-talk path.
        let run = |manage_b: bool| {
            let (mut sim, wh_a, _) = two_warehouse_sim();
            let mut kwo = Orchestrator::new(9);
            kwo.manage(&sim, "WH_A", fast_setup());
            if manage_b {
                kwo.manage(&sim, "WH_B", fast_setup());
            }
            kwo.observe_until(&mut sim, 2 * DAY_MS);
            kwo.onboard(&mut sim);
            kwo.run_until(&mut sim, 4 * DAY_MS);
            let log = kwo.optimizer("WH_A").unwrap().actuator().log().to_vec();
            let credits = sim.account().accrued_credits(wh_a, sim.now());
            (log, credits)
        };
        let (log_alone, credits_alone) = run(false);
        let (log_together, credits_together) = run(true);
        assert!(!log_alone.is_empty(), "WH_A took actions");
        assert_eq!(log_alone, log_together, "identical decision sequence");
        assert_eq!(
            credits_alone.to_bits(),
            credits_together.to_bits(),
            "bit-identical spend"
        );
    }
}
