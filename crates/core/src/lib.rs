//! # Keebo Warehouse Optimization (KWO) — reproduction
//!
//! This crate assembles the full optimization life-cycle the paper describes
//! (§4): *"from observing the workload, learning smart models, applying
//! optimization decisions, monitoring the performance impact of those
//! decisions, adjusting or reverting the optimizations in case of an adverse
//! impact, and reporting the overall benefits to users."*
//!
//! The pieces:
//!
//! * [`orchestrator`] — the data-learning loop of Algorithm 1: periodic
//!   telemetry reads, periodic (re)training, real-time decisions at
//!   `T_realtime` cadence, constraint filtering, monitoring feedback, and
//!   savings reporting;
//! * [`monitoring`] — real-time state, load-spike detection, and
//!   external-change detection (§4.4);
//! * [`actuator`] — translates agent actions into `ALTER WAREHOUSE`
//!   commands, keeps the action log, retries transient control-plane
//!   errors, and reports errors (§4.5);
//! * [`reconciler`] — records the intended configuration and re-drives any
//!   drift (failed, dropped, or delayed ALTERs) under capped exponential
//!   backoff with deterministic jitter;
//! * [`health`] — the `Healthy → Degraded → Frozen` state machine that
//!   gates training and optimization on telemetry staleness and actuation
//!   failures, with automatic recovery;
//! * [`dashboard`] — the KPI aggregates behind the web portal's charts
//!   (§4.1): spend, savings, latency percentiles, queue times, cost per
//!   query;
//! * [`pricing`] — value-based pricing: the customer pays a percentage of
//!   realized savings (§4.7).
//!
//! ## Quickstart
//!
//! ```no_run
//! use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
//! use keebo::{KwoSetup, Orchestrator};
//! use workload::{generate_trace, BiWorkload};
//!
//! // A customer account with one oversized BI warehouse.
//! let mut account = Account::new();
//! let wh = account.create_warehouse(
//!     "BI_WH",
//!     WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
//! );
//! let mut sim = Simulator::new(account);
//! for q in generate_trace(&BiWorkload::default(), 0, 14 * DAY_MS, 42) {
//!     sim.submit_query(wh, q);
//! }
//!
//! // Attach KWO: observe for 7 days, then optimize for 7 more.
//! let mut kwo = Orchestrator::new(42);
//! kwo.manage(&sim, "BI_WH", KwoSetup::default());
//! kwo.observe_until(&mut sim, 7 * DAY_MS);
//! kwo.onboard(&mut sim);
//! kwo.run_until(&mut sim, 14 * DAY_MS);
//!
//! let report = kwo.savings_report(&sim, "BI_WH", 7 * DAY_MS, 14 * DAY_MS);
//! println!("estimated savings: {:.1} credits", report.estimated_savings);
//! ```

pub mod actuator;
pub mod consolidation;
pub mod dashboard;
pub mod drill;
pub mod drng;
pub mod fleet;
pub mod gateway;
pub mod health;
pub mod monitoring;
pub mod orchestrator;
pub mod persist;
pub mod pool;
pub mod pricing;
pub mod reconciler;
pub mod store;

pub use actuator::{
    ActionLogEntry, ActionOutcome, Actuator, CommandOutcome, CommandStatus, LogEntryKind,
};
pub use consolidation::{evaluate_consolidation, ConsolidationInput, ConsolidationReport};
pub use dashboard::{DailyKpis, Dashboard, OpsKpis};
pub use drill::{DrillBackend, DrillCell, DrillOutcome, Fingerprint};
pub use drng::DetRng;
pub use fleet::{
    FleetController, FleetReport, FleetRunStats, TenantReport, TenantSpec, WarehouseSpec,
};
pub use gateway::{
    Admission, Gateway, GatewayConfig, GatewayStats, Priority, Request, RequestKind, ShedCounts,
    ShedReason, TokenBucket,
};
pub use health::{
    DegradeReason, HealthMonitor, HealthSettings, HealthSignals, HealthState, HealthTransition,
};
pub use monitoring::{is_external_config_change, Monitor, RealTimeState};
pub use orchestrator::{
    derive_stream_seed, KwoSetup, ManageError, Orchestrator, SnapshotPolicy, WarehouseOptimizer,
};
pub use persist::{
    CtlState, OptimizerSnapshot, PersistError, PersistRecord, RecoveryStats, RetrainRecord,
    SnapshotState, FORMAT_VERSION,
};
pub use pool::WorkerPool;
pub use pricing::{Invoice, ValueBasedPricing};
pub use reconciler::{ReconcileOutcome, Reconciler, ReconcilerSettings};
pub use store::{
    scan_frames, CrashPlan, FileStore, FrameScan, MemStore, RemoteKvStore, StateStore,
    StoreContents, StoreFaultPlan,
};

// Re-export the user-facing configuration surface so downstream users need
// only this crate for common setups.
pub use agent::{ConstraintSet, Rule, RuleEffect, SliderPosition, TimeWindow};
pub use costmodel::SavingsReport;

// The observability layer: metrics registry, decision trace, exporters.
// `keebo::obs::global()` is the process-wide registry every crate in the
// decision path records into; `WarehouseOptimizer::trace()` holds the
// per-tick decision log.
pub use keebo_obs as obs;
pub use keebo_obs::{DecisionEvent, DecisionTrace, MaskEntry, MetricsSnapshot, TraceFeatures};

// Used by the doc example above.
pub use workload::generate_trace;
