//! Warehouse consolidation advisor.
//!
//! §1 of the paper lists "consolidating multiple warehouses into one, and
//! load balancing decisions" among the warehouse-optimization actions.
//! Organizations routinely end up with several half-idle warehouses whose
//! combined bill (each paying its own 60-second minimums, auto-suspend
//! tails, and idle troughs) exceeds what one shared warehouse would cost.
//!
//! The advisor reuses the §5 machinery: it replays each warehouse's
//! telemetry separately under its own configuration, then replays the
//! *merged* stream under a single target configuration, and reports the
//! delta. Merging is a what-if estimate, not an action — the output is a
//! recommendation for the customer's admin (consolidation changes
//! application routing, which KWO cannot do transparently).

use cdw_sim::{QueryRecord, SimTime, WarehouseConfig};
use costmodel::{ReplayConfig, WarehouseCostModel};
use serde::{Deserialize, Serialize};

/// One candidate warehouse in a consolidation study.
#[derive(Debug, Clone)]
pub struct ConsolidationInput<'a> {
    pub name: &'a str,
    pub config: WarehouseConfig,
    pub records: &'a [QueryRecord],
}

/// The advisor's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationReport {
    /// Estimated credits if each warehouse keeps running separately.
    pub separate_credits: f64,
    /// Estimated credits for the merged stream on the target configuration.
    pub merged_credits: f64,
    /// `separate - merged`; positive means consolidation saves.
    pub estimated_savings: f64,
    /// Peak concurrent queries in the merged stream — capacity sizing input.
    pub peak_concurrency: usize,
    /// Whether the advisor recommends consolidating (savings above 5% and
    /// the target capacity can absorb the peak).
    pub recommended: bool,
}

/// Estimates the cost of merging `inputs` onto `target` over
/// `[window_start, window_end)`.
///
/// # Panics
/// Panics when `inputs` is empty or the target configuration is invalid.
pub fn evaluate_consolidation(
    model: &WarehouseCostModel,
    inputs: &[ConsolidationInput<'_>],
    target: &WarehouseConfig,
    window_start: SimTime,
    window_end: SimTime,
) -> ConsolidationReport {
    assert!(!inputs.is_empty(), "nothing to consolidate");
    target
        .validate()
        // lint: allow(D5) — documented precondition: callers pass a validated target config
        .unwrap_or_else(|e| panic!("invalid target config: {e}"));

    let mut separate = 0.0;
    let mut merged_records: Vec<QueryRecord> = Vec::new();
    for input in inputs {
        let outcome = model.replay(
            input.records,
            &ReplayConfig {
                original: input.config.clone(),
                window_start,
                window_end,
            },
        );
        separate += outcome.estimated_credits;
        merged_records.extend(input.records.iter().cloned());
    }
    merged_records.sort_by_key(|r| (r.arrival, r.query_id));

    let merged_outcome = model.replay(
        &merged_records,
        &ReplayConfig {
            original: target.clone(),
            window_start,
            window_end,
        },
    );

    // Peak concurrency of the merged stream (sweep-line over intervals).
    let mut events: Vec<(SimTime, i64)> = Vec::with_capacity(merged_records.len() * 2);
    for r in &merged_records {
        if (window_start..window_end).contains(&r.arrival) {
            events.push((r.start, 1));
            events.push((r.end, -1));
        }
    }
    events.sort_unstable();
    let mut level = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        level += d;
        peak = peak.max(level);
    }

    let estimated_savings = separate - merged_outcome.estimated_credits;
    let capacity = (target.max_clusters as usize) * (target.max_concurrency as usize);
    let recommended = estimated_savings > 0.05 * separate && peak as usize <= capacity;
    ConsolidationReport {
        separate_credits: separate,
        merged_credits: merged_outcome.estimated_credits,
        estimated_savings,
        peak_concurrency: peak as usize,
        recommended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{WarehouseSize, HOUR_MS, MINUTE_MS};

    fn rec(id: u64, warehouse: &str, arrival: SimTime, exec: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: warehouse.into(),
            size: WarehouseSize::Small,
            cluster_count: 1,
            text_hash: id,
            template_hash: 1,
            arrival,
            start: arrival,
            end: arrival + exec,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    /// Two sparse warehouses whose bursts land minutes apart: separately
    /// each pays its own auto-suspend tail per burst; merged, adjacent
    /// bursts share one running warehouse and one tail.
    fn sparse_pair() -> (Vec<QueryRecord>, Vec<QueryRecord>) {
        let a: Vec<QueryRecord> = (0..12)
            .map(|i| rec(i, "A", i * 2 * HOUR_MS, 2 * MINUTE_MS))
            .collect();
        let b: Vec<QueryRecord> = (0..12)
            .map(|i| rec(100 + i, "B", i * 2 * HOUR_MS + 5 * MINUTE_MS, 2 * MINUTE_MS))
            .collect();
        (a, b)
    }

    #[test]
    fn consolidating_sparse_warehouses_saves() {
        let (a, b) = sparse_pair();
        let cfg = WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(600);
        let model = WarehouseCostModel::default();
        let report = evaluate_consolidation(
            &model,
            &[
                ConsolidationInput {
                    name: "A",
                    config: cfg.clone(),
                    records: &a,
                },
                ConsolidationInput {
                    name: "B",
                    config: cfg.clone(),
                    records: &b,
                },
            ],
            &cfg,
            0,
            26 * HOUR_MS,
        );
        assert!(
            report.estimated_savings > 0.0,
            "interleaved sparse warehouses should merge profitably: {report:?}"
        );
        assert!(report.recommended);
        assert!(report.merged_credits < report.separate_credits);
    }

    #[test]
    fn peak_concurrency_is_computed_from_overlap() {
        let a = vec![rec(1, "A", 0, HOUR_MS)];
        let b = vec![rec(2, "B", MINUTE_MS, HOUR_MS)];
        let cfg = WarehouseConfig::new(WarehouseSize::Small);
        let model = WarehouseCostModel::default();
        let report = evaluate_consolidation(
            &model,
            &[
                ConsolidationInput {
                    name: "A",
                    config: cfg.clone(),
                    records: &a,
                },
                ConsolidationInput {
                    name: "B",
                    config: cfg.clone(),
                    records: &b,
                },
            ],
            &cfg,
            0,
            3 * HOUR_MS,
        );
        assert_eq!(report.peak_concurrency, 2);
    }

    #[test]
    fn undersized_target_is_not_recommended() {
        // 20 fully overlapping queries cannot fit one cluster with 8 slots.
        let a: Vec<QueryRecord> = (0..20).map(|i| rec(i, "A", 0, HOUR_MS)).collect();
        let cfg = WarehouseConfig::new(WarehouseSize::Small).with_max_concurrency(8);
        let model = WarehouseCostModel::default();
        let report = evaluate_consolidation(
            &model,
            &[ConsolidationInput {
                name: "A",
                config: cfg.clone(),
                records: &a,
            }],
            &cfg,
            0,
            3 * HOUR_MS,
        );
        assert!(report.peak_concurrency > 8);
        assert!(!report.recommended);
    }

    #[test]
    fn single_warehouse_consolidation_is_a_wash() {
        let a: Vec<QueryRecord> = (0..5)
            .map(|i| rec(i, "A", i * HOUR_MS, MINUTE_MS))
            .collect();
        let cfg = WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(300);
        let model = WarehouseCostModel::default();
        let report = evaluate_consolidation(
            &model,
            &[ConsolidationInput {
                name: "A",
                config: cfg.clone(),
                records: &a,
            }],
            &cfg,
            0,
            6 * HOUR_MS,
        );
        assert!(report.estimated_savings.abs() < 1e-9, "{report:?}");
        assert!(!report.recommended, "no savings, no recommendation");
    }

    #[test]
    #[should_panic(expected = "nothing to consolidate")]
    fn empty_inputs_panic() {
        let model = WarehouseCostModel::default();
        let cfg = WarehouseConfig::new(WarehouseSize::Small);
        let _ = evaluate_consolidation(&model, &[], &cfg, 0, HOUR_MS);
    }
}
