//! Value-based pricing (§4.7).
//!
//! "Customers are charged a percentage of the actual savings realized as a
//! direct result of KWO's actions ... there is no lock-in or upfront cost
//! ... customers only pay for the value already delivered."

use costmodel::SavingsReport;
use serde::{Deserialize, Serialize};

/// An invoice line derived from a savings report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invoice {
    /// Savings the charge is based on (clamped at zero: "no savings, no
    /// charges", C1).
    pub billable_savings_credits: f64,
    /// Keebo's share.
    pub charge_credits: f64,
    /// What the customer keeps.
    pub customer_net_credits: f64,
}

/// Percentage-of-savings pricing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueBasedPricing {
    /// Fraction of savings charged, in [0, 1].
    pub rate: f64,
}

impl Default for ValueBasedPricing {
    fn default() -> Self {
        Self { rate: 0.3 }
    }
}

impl ValueBasedPricing {
    /// Creates a pricing scheme.
    ///
    /// # Panics
    /// Panics unless `rate` is in [0, 1].
    pub fn new(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        Self { rate }
    }

    /// Prices a savings report.
    pub fn invoice(&self, report: &SavingsReport) -> Invoice {
        let billable = report.estimated_savings.max(0.0);
        let charge = billable * self.rate;
        Invoice {
            billable_savings_credits: billable,
            charge_credits: charge,
            customer_net_credits: billable - charge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costmodel::ReplayOutcome;

    fn report(savings: f64) -> SavingsReport {
        SavingsReport {
            window_start: 0,
            window_end: 1,
            estimated_without_keebo: 100.0,
            actual_with_keebo: 100.0 - savings,
            estimated_savings: savings,
            savings_fraction: savings / 100.0,
            replay: ReplayOutcome {
                estimated_credits: 100.0,
                hourly: cdw_sim::HourlyCredits::new(),
                active_ms: 0,
                sessions: 0,
                replayed_queries: 0,
            },
        }
    }

    #[test]
    fn charge_is_a_fraction_of_savings() {
        let inv = ValueBasedPricing::new(0.3).invoice(&report(40.0));
        assert!((inv.charge_credits - 12.0).abs() < 1e-12);
        assert!((inv.customer_net_credits - 28.0).abs() < 1e-12);
    }

    #[test]
    fn no_savings_no_charge() {
        let inv = ValueBasedPricing::default().invoice(&report(0.0));
        assert_eq!(inv.charge_credits, 0.0);
    }

    #[test]
    fn negative_savings_never_bill_the_customer() {
        let inv = ValueBasedPricing::default().invoice(&report(-5.0));
        assert_eq!(inv.billable_savings_credits, 0.0);
        assert_eq!(inv.charge_credits, 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn invalid_rate_panics() {
        let _ = ValueBasedPricing::new(1.5);
    }
}
