//! Fleet-scale parallel control plane.
//!
//! The paper's deployment manages *fleets*: many customer accounts, each
//! with many warehouses, all optimized by independent control loops ("Keebo
//! currently manages and optimizes millions of queries" across customers).
//! One `(Simulator, Orchestrator)` pair models one tenant; tenants never
//! share warehouses, telemetry, or models, so the fleet is embarrassingly
//! parallel across tenants.
//!
//! [`FleetController`] shards tenants into independent simulator/optimizer
//! pairs and drives the shards concurrently with `std::thread::scope`.
//! Determinism is preserved by construction:
//!
//! * every random stream is derived from the fleet seed and a *name* via
//!   [`derive_stream_seed`] — the tenant name for the orchestrator and
//!   fault injector, the warehouse name (within the tenant stream) for each
//!   optimizer — never from creation order or thread identity;
//! * each shard's result lands in a slot indexed by its spec order, and
//!   aggregation folds the slots in that order;
//!
//! so a fleet run produces bit-identical [`FleetReport`]s whether it runs
//! on 1 thread or 16, and each warehouse behaves exactly as it would if it
//! were the only thing the controller managed.

use crate::dashboard::OpsKpis;
use crate::orchestrator::{derive_stream_seed, KwoSetup, Orchestrator};
use crate::pricing::{Invoice, ValueBasedPricing};
use crate::store::MemStore;
use cdw_sim::{Account, FaultPlan, QuerySpec, SimTime, Simulator, WarehouseConfig};
use costmodel::SavingsReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;

/// One warehouse a tenant brings to the fleet: its name, starting
/// configuration, optimizer setup, and query trace.
#[derive(Debug, Clone)]
pub struct WarehouseSpec {
    pub name: String,
    pub config: WarehouseConfig,
    pub setup: KwoSetup,
    /// The workload replayed on this warehouse (arrival-ordered or not;
    /// the simulator orders events itself).
    pub queries: Vec<QuerySpec>,
}

/// One tenant: an isolated account whose warehouses are optimized by one
/// shard-local orchestrator.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub name: String,
    pub warehouses: Vec<WarehouseSpec>,
    /// Faults injected into this tenant's control/telemetry plane.
    pub fault_plan: FaultPlan,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            warehouses: Vec::new(),
            fault_plan: FaultPlan::none(),
        }
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    pub fn add_warehouse(mut self, spec: WarehouseSpec) -> Self {
        self.warehouses.push(spec);
        self
    }
}

/// Per-warehouse outcome inside a tenant report.
#[derive(Debug, Clone)]
pub struct WarehouseOutcome {
    pub warehouse: String,
    pub savings: SavingsReport,
    pub ops: OpsKpis,
    pub invoice: Invoice,
}

/// One tenant's rollup: per-warehouse outcomes plus tenant totals.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub tenant: String,
    pub warehouses: Vec<WarehouseOutcome>,
    /// Sum of per-warehouse without-Keebo estimates.
    pub estimated_without_keebo: f64,
    /// Sum of per-warehouse with-Keebo actuals.
    pub actual_with_keebo: f64,
    /// Sum of per-warehouse estimated savings (may be negative).
    pub estimated_savings: f64,
    /// Sum of per-warehouse invoices (each clamped at zero individually:
    /// a warehouse that regressed never discounts another's charge).
    pub invoice: Invoice,
    pub ops: OpsKpis,
}

/// Fleet-wide rollup across every tenant.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Tenant reports in spec order (deterministic across thread counts).
    pub tenants: Vec<TenantReport>,
    pub warehouses: usize,
    pub estimated_without_keebo: f64,
    pub actual_with_keebo: f64,
    pub estimated_savings: f64,
    pub invoice: Invoice,
    pub ops: OpsKpis,
}

impl FleetReport {
    /// Order-sensitive FNV-1a digest over every float bit pattern and
    /// counter in the report. Two runs of the same fleet are *bit-identical*
    /// iff their digests match — the determinism contract the bench and
    /// tests check across thread counts.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bits: u64| {
            for b in bits.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for t in &self.tenants {
            for w in &t.warehouses {
                eat(w.savings.estimated_without_keebo.to_bits());
                eat(w.savings.actual_with_keebo.to_bits());
                eat(w.savings.estimated_savings.to_bits());
                eat(w.invoice.charge_credits.to_bits());
                eat(w.ops.actions_applied as u64);
                eat(w.ops.actions_failed as u64);
                eat(w.ops.rollbacks as u64);
                eat(w.ops.reconciliations as u64);
                eat(w.ops.transient_retries);
                eat(w.ops.fetch_outages);
            }
        }
        eat(self.warehouses as u64);
        eat(self.estimated_savings.to_bits());
        eat(self.invoice.charge_credits.to_bits());
        h
    }
}

fn zero_invoice() -> Invoice {
    Invoice {
        billable_savings_credits: 0.0,
        charge_credits: 0.0,
        customer_net_credits: 0.0,
    }
}

fn add_invoice(acc: &mut Invoice, inv: &Invoice) {
    acc.billable_savings_credits += inv.billable_savings_credits;
    acc.charge_credits += inv.charge_credits;
    acc.customer_net_credits += inv.customer_net_credits;
}

/// Drives a fleet of tenants, each on its own shard, in parallel.
#[derive(Debug, Clone)]
pub struct FleetController {
    seed: u64,
    pricing: ValueBasedPricing,
    tenants: Vec<TenantSpec>,
    /// When set, every shard orchestrator journals to its own in-memory
    /// state store (durability plumbing on, zero cross-shard sharing).
    persistence: bool,
}

/// One shard: a tenant's isolated simulator plus its orchestrator.
struct FleetShard {
    sim: Simulator,
    kwo: Orchestrator,
    warehouses: Vec<String>,
}

impl FleetController {
    /// A fleet with the given root seed and default value-based pricing.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            pricing: ValueBasedPricing::default(),
            tenants: Vec::new(),
            persistence: false,
        }
    }

    pub fn with_pricing(mut self, pricing: ValueBasedPricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Turns on per-shard durable journaling (an isolated [`MemStore`] per
    /// tenant orchestrator). Persistence is write-path bookkeeping only, so
    /// fleet results stay bit-identical with it on or off — the zero-
    /// perturbation contract the fleet tests pin.
    pub fn with_persistence(mut self) -> Self {
        self.persistence = true;
        self
    }

    pub fn add_tenant(&mut self, tenant: TenantSpec) -> &mut Self {
        self.tenants.push(tenant);
        self
    }

    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    pub fn warehouse_count(&self) -> usize {
        self.tenants.iter().map(|t| t.warehouses.len()).sum()
    }

    /// Builds one tenant's shard: an account with the tenant's warehouses,
    /// a fault-injecting simulator, the submitted traces, and a shard-local
    /// orchestrator managing every warehouse. All seeds derive from names.
    fn build_shard(&self, tenant: &TenantSpec) -> FleetShard {
        let tenant_seed = derive_stream_seed(self.seed, &tenant.name);
        let (account, ids) = Account::with_warehouses(
            tenant
                .warehouses
                .iter()
                .map(|w| (w.name.as_str(), w.config.clone())),
        );
        let fault_seed = derive_stream_seed(tenant_seed, "faults");
        let mut sim = Simulator::with_faults(account, tenant.fault_plan.clone(), fault_seed);
        for (w, id) in tenant.warehouses.iter().zip(ids) {
            sim.submit_trace(w.queries.iter().cloned().map(|q| (id, q)));
        }
        let mut kwo = Orchestrator::new(tenant_seed);
        if self.persistence {
            kwo.attach_store(Box::new(MemStore::new()), sim.now());
        }
        for w in &tenant.warehouses {
            kwo.manage(&sim, &w.name, w.setup.clone());
        }
        FleetShard {
            sim,
            kwo,
            warehouses: tenant.warehouses.iter().map(|w| w.name.clone()).collect(),
        }
    }

    /// Drives one shard through the full lifecycle and rolls up its report.
    fn run_shard(&self, index: usize, observe_until: SimTime, until: SimTime) -> TenantReport {
        // lint: allow(D1) — wall time only feeds the shard-duration histogram, never a decision
        let t0 = std::time::Instant::now();
        let tenant = &self.tenants[index];
        let mut shard = self.build_shard(tenant);
        shard.kwo.observe_until(&mut shard.sim, observe_until);
        shard.kwo.onboard(&mut shard.sim);
        shard.kwo.run_until(&mut shard.sim, until);

        let now = shard.sim.now();
        let mut warehouses = Vec::with_capacity(shard.warehouses.len());
        for name in &shard.warehouses {
            let savings = shard
                .kwo
                .savings_report(&shard.sim, name, observe_until, until);
            let invoice = self.pricing.invoice(&savings);
            // lint: allow(D5) — shard.warehouses lists exactly the names onboard() managed
            let ops = OpsKpis::collect(shard.kwo.optimizer(name).expect("managed warehouse"), now);
            warehouses.push(WarehouseOutcome {
                warehouse: name.clone(),
                savings,
                ops,
                invoice,
            });
        }
        let mut invoice = zero_invoice();
        for w in &warehouses {
            add_invoice(&mut invoice, &w.invoice);
        }
        keebo_obs::global()
            .histogram(
                "keebo.fleet.shard_wall_ms",
                &[100.0, 500.0, 2_000.0, 10_000.0, 60_000.0, 300_000.0],
            )
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        TenantReport {
            tenant: tenant.name.clone(),
            estimated_without_keebo: warehouses
                .iter()
                .map(|w| w.savings.estimated_without_keebo)
                .sum(),
            actual_with_keebo: warehouses.iter().map(|w| w.savings.actual_with_keebo).sum(),
            estimated_savings: warehouses.iter().map(|w| w.savings.estimated_savings).sum(),
            ops: OpsKpis::rollup(warehouses.iter().map(|w| &w.ops)),
            invoice,
            warehouses,
        }
    }

    /// Runs the whole fleet: every tenant observes until `observe_until`,
    /// onboards, then optimizes until `until`. Shards run concurrently on
    /// up to `threads` workers pulling from a shared work queue; the report
    /// is bit-identical for any `threads >= 1`.
    ///
    /// # Panics
    /// Panics if the fleet has no tenants or `threads == 0`.
    pub fn run(&self, observe_until: SimTime, until: SimTime, threads: usize) -> FleetReport {
        assert!(!self.tenants.is_empty(), "fleet has no tenants");
        assert!(threads > 0, "need at least one worker thread");
        let shards = self.tenants.len();
        let workers = threads.min(shards);
        keebo_obs::global()
            .gauge("keebo.fleet.tenants")
            .set(shards as f64);
        keebo_obs::global()
            .gauge("keebo.fleet.workers")
            .set(workers as f64);

        let results: Mutex<Vec<Option<TenantReport>>> = Mutex::new(vec![None; shards]);
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Work-stealing queue: assignment order is racy, but
                    // each shard is self-contained and results land in
                    // spec-order slots, so the report does not depend on
                    // which worker ran what.
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= shards {
                        break;
                    }
                    let report = self.run_shard(index, observe_until, until);
                    // Recover from poisoning: slots hold plain data, and a
                    // panicked sibling worker already propagates via scope.
                    results.lock().unwrap_or_else(PoisonError::into_inner)[index] = Some(report);
                });
            }
        });

        let tenants: Vec<TenantReport> = results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            // lint: allow(D5) — the work queue hands every index to exactly one worker
            .map(|r| r.expect("every shard reports"))
            .collect();

        let mut invoice = zero_invoice();
        for t in &tenants {
            add_invoice(&mut invoice, &t.invoice);
        }
        FleetReport {
            warehouses: tenants.iter().map(|t| t.warehouses.len()).sum(),
            estimated_without_keebo: tenants.iter().map(|t| t.estimated_without_keebo).sum(),
            actual_with_keebo: tenants.iter().map(|t| t.actual_with_keebo).sum(),
            estimated_savings: tenants.iter().map(|t| t.estimated_savings).sum(),
            ops: OpsKpis::rollup(tenants.iter().map(|t| &t.ops)),
            invoice,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthState;
    use cdw_sim::{WarehouseSize, DAY_MS, HOUR_MS, MINUTE_MS};
    use workload::{generate_trace, BiWorkload, EtlWorkload};

    fn fast_setup() -> KwoSetup {
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 2,
            refresh_episodes: 0,
            train_interval_ms: 2 * DAY_MS,
            ..KwoSetup::default()
        }
    }

    fn warehouse_spec(name: &str, archetype: usize, seed: u64, days: u64) -> WarehouseSpec {
        let queries = match archetype % 2 {
            0 => generate_trace(
                &EtlWorkload {
                    pipelines: 2,
                    queries_per_run: 2,
                    period_ms: 2 * HOUR_MS,
                    ..EtlWorkload::default()
                },
                0,
                days * DAY_MS,
                seed,
            ),
            _ => generate_trace(
                &BiWorkload {
                    dashboards: 2,
                    queries_per_refresh: 2,
                    peak_refreshes_per_hour: 4.0,
                    ..BiWorkload::default()
                },
                0,
                days * DAY_MS,
                seed,
            ),
        };
        WarehouseSpec {
            name: name.to_string(),
            config: WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(1800),
            setup: fast_setup(),
            queries,
        }
    }

    fn small_fleet(seed: u64, days: u64) -> FleetController {
        let mut fleet = FleetController::new(seed);
        for t in 0..2 {
            let tenant_name = format!("tenant-{t}");
            let mut tenant = TenantSpec::new(&tenant_name);
            for w in 0..2 {
                let name = format!("T{t}_WH{w}");
                let wh_seed = derive_stream_seed(seed, &name);
                tenant = tenant.add_warehouse(warehouse_spec(&name, t * 2 + w, wh_seed, days));
            }
            fleet.add_tenant(tenant);
        }
        fleet
    }

    #[test]
    fn fleet_reports_every_warehouse() {
        let fleet = small_fleet(11, 2);
        let report = fleet.run(DAY_MS, 2 * DAY_MS, 2);
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.warehouses, 4);
        assert!(report.estimated_without_keebo > 0.0);
        assert!(report.actual_with_keebo > 0.0);
        // Invoice identity: charge + customer net == billable savings.
        let inv = &report.invoice;
        assert!(
            (inv.charge_credits + inv.customer_net_credits - inv.billable_savings_credits).abs()
                < 1e-9
        );
    }

    #[test]
    fn fleet_is_bit_identical_across_thread_counts() {
        let fleet = small_fleet(7, 2);
        let one = fleet.run(DAY_MS, 2 * DAY_MS, 1);
        let two = fleet.run(DAY_MS, 2 * DAY_MS, 2);
        let four = fleet.run(DAY_MS, 2 * DAY_MS, 4);
        assert_eq!(one.digest(), two.digest());
        assert_eq!(one.digest(), four.digest());
        // Digest covers the rollups; spot-check raw bits too.
        assert_eq!(
            one.estimated_savings.to_bits(),
            four.estimated_savings.to_bits()
        );
        assert_eq!(one.ops.actions_applied, four.ops.actions_applied);
    }

    #[test]
    fn observability_is_zero_perturbation() {
        // The acceptance bar for the whole observability layer: metrics and
        // tracing on vs off must yield bit-identical fleet results. Metrics
        // are fire-and-forget atomics and the trace only copies values out,
        // so the digest cannot move.
        let fleet = small_fleet(13, 2);
        let metrics_on = fleet.run(DAY_MS, 2 * DAY_MS, 2).digest();
        keebo_obs::set_enabled(false);
        let metrics_off = fleet.run(DAY_MS, 2 * DAY_MS, 2).digest();
        keebo_obs::set_enabled(true);
        assert_eq!(metrics_on, metrics_off, "metrics on/off must not perturb");

        // Tracing disabled entirely (capacity 0) — same digest again.
        let mut no_trace = FleetController::new(13);
        for t in 0..2 {
            let tenant_name = format!("tenant-{t}");
            let mut tenant = TenantSpec::new(&tenant_name);
            for w in 0..2 {
                let name = format!("T{t}_WH{w}");
                let wh_seed = derive_stream_seed(13, &name);
                let mut spec = warehouse_spec(&name, t * 2 + w, wh_seed, 2);
                spec.setup.trace_capacity = 0;
                tenant = tenant.add_warehouse(spec);
            }
            no_trace.add_tenant(tenant);
        }
        let trace_off = no_trace.run(DAY_MS, 2 * DAY_MS, 2).digest();
        assert_eq!(metrics_on, trace_off, "trace on/off must not perturb");
    }

    #[test]
    fn persistence_is_zero_perturbation_across_thread_counts() {
        // Durable journaling is pure write-path bookkeeping: a fleet run
        // with per-shard state stores must produce the same bit-identical
        // digest as one without, at any worker count.
        let plain = small_fleet(21, 2);
        let durable = small_fleet(21, 2).with_persistence();
        let baseline = plain.run(DAY_MS, 2 * DAY_MS, 1).digest();
        for threads in [1, 2, 4] {
            assert_eq!(
                durable.run(DAY_MS, 2 * DAY_MS, threads).digest(),
                baseline,
                "persisted fleet digest diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn tenant_results_do_not_depend_on_fleet_composition() {
        // A tenant's report is identical whether it is the only tenant or
        // one of several: shard streams derive from names, not indices.
        let days = 2;
        let seed = 5;
        let spec = |t: usize| {
            let tenant_name = format!("tenant-{t}");
            let mut tenant = TenantSpec::new(&tenant_name);
            for w in 0..2 {
                let name = format!("T{t}_WH{w}");
                let wh_seed = derive_stream_seed(seed, &name);
                tenant = tenant.add_warehouse(warehouse_spec(&name, w, wh_seed, days));
            }
            tenant
        };

        let mut solo = FleetController::new(seed);
        solo.add_tenant(spec(1));
        let solo_report = solo.run(DAY_MS, days * DAY_MS, 1);

        let mut both = FleetController::new(seed);
        both.add_tenant(spec(0));
        both.add_tenant(spec(1));
        let both_report = both.run(DAY_MS, days * DAY_MS, 2);

        let solo_t = &solo_report.tenants[0];
        let both_t = &both_report.tenants[1];
        assert_eq!(solo_t.tenant, both_t.tenant);
        assert_eq!(
            solo_t.estimated_savings.to_bits(),
            both_t.estimated_savings.to_bits()
        );
        assert_eq!(
            solo_t.warehouses[0].savings.actual_with_keebo.to_bits(),
            both_t.warehouses[0].savings.actual_with_keebo.to_bits()
        );
    }

    #[test]
    fn rollup_health_is_worst_of_members() {
        let healthy = OpsKpis {
            health: HealthState::Healthy,
            healthy_ticks: 5,
            degraded_ticks: 0,
            frozen_ticks: 0,
            actions_applied: 3,
            actions_failed: 0,
            rollbacks: 0,
            reconciliations: 0,
            transient_retries: 0,
            fetch_outages: 0,
            fetch_partials: 0,
            telemetry_staleness_ms: 10,
        };
        let mut frozen = healthy.clone();
        frozen.health = HealthState::Frozen;
        frozen.telemetry_staleness_ms = 99;
        let rolled = OpsKpis::rollup([&healthy, &frozen]);
        assert_eq!(rolled.health, HealthState::Frozen);
        assert_eq!(rolled.healthy_ticks, 10);
        assert_eq!(rolled.actions_applied, 6);
        assert_eq!(rolled.telemetry_staleness_ms, 99);
    }
}
