//! Fleet-scale parallel control plane.
//!
//! The paper's deployment manages *fleets*: many customer accounts, each
//! with many warehouses, all optimized by independent control loops ("Keebo
//! currently manages and optimizes millions of queries" across customers).
//! One `(Simulator, Orchestrator)` pair models one tenant; tenants never
//! share warehouses, telemetry, or models, so the fleet is embarrassingly
//! parallel across tenants.
//!
//! [`FleetController`] shards tenants into independent simulator/optimizer
//! pairs and drives the shards concurrently on a persistent
//! [`WorkerPool`] (see [`crate::pool`]) — or a transient one, for the
//! convenience [`FleetController::run`] entry point. Determinism is
//! preserved by construction:
//!
//! * every random stream is derived from the fleet seed and a *name* via
//!   [`derive_stream_seed`] — the tenant name for the orchestrator and
//!   fault injector, the warehouse name (within the tenant stream) for each
//!   optimizer — never from creation order or thread identity;
//! * each shard's result lands in a slot indexed by its spec order, and
//!   aggregation folds the slots in that order;
//! * query traces live in shared immutable [`std::sync::Arc`] buffers
//!   replayed through the simulator's trace arena
//!   ([`Simulator::submit_trace_shared`]), so shard construction never
//!   deep-clones a workload and buffer reuse cannot leak state between
//!   shards;
//!
//! so a fleet run produces bit-identical [`FleetReport`]s whether it runs
//! on 1 thread or 16, on a fresh pool or a reused one, and each warehouse
//! behaves exactly as it would if it were the only thing the controller
//! managed.

use crate::dashboard::OpsKpis;
use crate::orchestrator::{derive_stream_seed, KwoSetup, Orchestrator};
use crate::pool::WorkerPool;
use crate::pricing::{Invoice, ValueBasedPricing};
use crate::store::MemStore;
use cdw_sim::{Account, FaultPlan, QuerySpec, SimTime, Simulator, WarehouseConfig};
use costmodel::SavingsReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One warehouse a tenant brings to the fleet: its name, starting
/// configuration, optimizer setup, and query trace.
#[derive(Debug, Clone)]
pub struct WarehouseSpec {
    pub name: String,
    pub config: WarehouseConfig,
    pub setup: KwoSetup,
    /// The workload replayed on this warehouse (arrival-ordered or not;
    /// the simulator orders events itself). Shared and immutable: building
    /// a shard hands the same buffer to the simulator's trace arena
    /// instead of cloning every [`QuerySpec`].
    pub queries: Arc<[QuerySpec]>,
}

/// One tenant: an isolated account whose warehouses are optimized by one
/// shard-local orchestrator.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub name: String,
    pub warehouses: Vec<WarehouseSpec>,
    /// Faults injected into this tenant's control/telemetry plane.
    pub fault_plan: FaultPlan,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            warehouses: Vec::new(),
            fault_plan: FaultPlan::none(),
        }
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    pub fn add_warehouse(mut self, spec: WarehouseSpec) -> Self {
        self.warehouses.push(spec);
        self
    }
}

/// Per-warehouse outcome inside a tenant report.
#[derive(Debug, Clone)]
pub struct WarehouseOutcome {
    pub warehouse: String,
    pub savings: SavingsReport,
    pub ops: OpsKpis,
    pub invoice: Invoice,
}

/// One tenant's rollup: per-warehouse outcomes plus tenant totals.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub tenant: String,
    pub warehouses: Vec<WarehouseOutcome>,
    /// Sum of per-warehouse without-Keebo estimates.
    pub estimated_without_keebo: f64,
    /// Sum of per-warehouse with-Keebo actuals.
    pub actual_with_keebo: f64,
    /// Sum of per-warehouse estimated savings (may be negative).
    pub estimated_savings: f64,
    /// Sum of per-warehouse invoices (each clamped at zero individually:
    /// a warehouse that regressed never discounts another's charge).
    pub invoice: Invoice,
    pub ops: OpsKpis,
}

/// Fleet-wide rollup across every tenant.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Tenant reports in spec order (deterministic across thread counts).
    pub tenants: Vec<TenantReport>,
    pub warehouses: usize,
    pub estimated_without_keebo: f64,
    pub actual_with_keebo: f64,
    pub estimated_savings: f64,
    pub invoice: Invoice,
    pub ops: OpsKpis,
}

/// Incremental order-sensitive FNV-1a accumulator for [`FleetReport`]
/// digests (and the gateway's decision/response fingerprints). Kept
/// crate-private: the digest is a determinism fingerprint, not a stable
/// serialization format.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn eat(&mut self, bits: u64) {
        for b in bits.to_le_bytes() {
            self.byte(b);
        }
    }

    fn eat_f(&mut self, v: f64) {
        self.eat(v.to_bits());
    }

    /// Length-prefixed so `("ab", "c")` and `("a", "bc")` hash apart.
    pub(crate) fn eat_str(&mut self, s: &str) {
        self.eat(s.len() as u64);
        for &b in s.as_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }

    fn eat_invoice(&mut self, inv: &Invoice) {
        self.eat_f(inv.billable_savings_credits);
        self.eat_f(inv.charge_credits);
        self.eat_f(inv.customer_net_credits);
    }

    fn eat_savings(&mut self, s: &SavingsReport) {
        self.eat(s.window_start);
        self.eat(s.window_end);
        self.eat_f(s.estimated_without_keebo);
        self.eat_f(s.actual_with_keebo);
        self.eat_f(s.estimated_savings);
        self.eat_f(s.savings_fraction);
        self.eat_f(s.replay.estimated_credits);
        self.eat(s.replay.active_ms);
        self.eat(s.replay.sessions as u64);
        self.eat(s.replay.replayed_queries as u64);
        // BTreeMap-backed: iteration order is hour order, deterministic.
        self.eat(s.replay.hourly.iter().count() as u64);
        for (hour, credits) in s.replay.hourly.iter() {
            self.eat(hour);
            self.eat_f(credits);
        }
    }

    fn eat_ops(&mut self, ops: &OpsKpis) {
        self.eat(ops.health.digest_code());
        self.eat(ops.healthy_ticks);
        self.eat(ops.degraded_ticks);
        self.eat(ops.frozen_ticks);
        self.eat(ops.actions_applied as u64);
        self.eat(ops.actions_failed as u64);
        self.eat(ops.rollbacks as u64);
        self.eat(ops.reconciliations as u64);
        self.eat(ops.transient_retries);
        self.eat(ops.fetch_outages);
        self.eat(ops.fetch_partials);
        self.eat(ops.telemetry_staleness_ms);
    }
}

impl FleetReport {
    /// Order-sensitive FNV-1a digest over *every* field of the report:
    /// names, each warehouse's full savings report (replay buckets
    /// included), invoices, every ops KPI (health state and tick counters
    /// included), and the tenant/fleet rollups. Two runs of the same fleet
    /// are *bit-identical* iff their digests match — the determinism
    /// contract the bench and tests check across thread counts.
    ///
    /// Any field added to [`OpsKpis`], [`SavingsReport`], or [`Invoice`]
    /// must be hashed here; the table-driven digest-sensitivity test
    /// enforces the current coverage so omissions fail loudly instead of
    /// silently weakening the gate (the pre-fix digest skipped
    /// `fetch_partials`, staleness, and the health state entirely).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for t in &self.tenants {
            h.eat_str(&t.tenant);
            h.eat(t.warehouses.len() as u64);
            for w in &t.warehouses {
                h.eat_str(&w.warehouse);
                h.eat_savings(&w.savings);
                h.eat_invoice(&w.invoice);
                h.eat_ops(&w.ops);
            }
            h.eat_f(t.estimated_without_keebo);
            h.eat_f(t.actual_with_keebo);
            h.eat_f(t.estimated_savings);
            h.eat_invoice(&t.invoice);
            h.eat_ops(&t.ops);
        }
        h.eat(self.warehouses as u64);
        h.eat_f(self.estimated_without_keebo);
        h.eat_f(self.actual_with_keebo);
        h.eat_f(self.estimated_savings);
        h.eat_invoice(&self.invoice);
        h.eat_ops(&self.ops);
        h.0
    }
}

fn zero_invoice() -> Invoice {
    Invoice {
        billable_savings_credits: 0.0,
        charge_credits: 0.0,
        customer_net_credits: 0.0,
    }
}

fn add_invoice(acc: &mut Invoice, inv: &Invoice) {
    acc.billable_savings_credits += inv.billable_savings_credits;
    acc.charge_credits += inv.charge_credits;
    acc.customer_net_credits += inv.customer_net_credits;
}

/// Wall-clock accounting for one fleet run, split at the bug line the
/// original bench got wrong: shard *construction* (trace submission,
/// orchestrator wiring) used to be timed inside the same window as shard
/// *driving* (simulation + optimization), inflating `wall_secs` and
/// flattening the apparent thread speedup. Both are cumulative worker
/// seconds across all shards, not elapsed wall time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetRunStats {
    /// Seconds spent building shards (account setup + trace submission).
    pub build_secs: f64,
    /// Seconds spent driving shards (observe/onboard/optimize + rollup).
    pub drive_secs: f64,
}

/// Drives a fleet of tenants, each on its own shard, in parallel.
#[derive(Debug, Clone)]
pub struct FleetController {
    seed: u64,
    pricing: ValueBasedPricing,
    /// Shared so worker-pool jobs (which need `'static` captures) can hold
    /// the specs without cloning the fleet. [`FleetController::add_tenant`]
    /// copy-on-writes via [`Arc::make_mut`].
    tenants: Arc<Vec<TenantSpec>>,
    /// When set, every shard orchestrator journals to its own in-memory
    /// state store (durability plumbing on, zero cross-shard sharing).
    persistence: bool,
}

/// One shard: a tenant's isolated simulator plus its orchestrator. Shared
/// with the serving gateway (`crate::gateway`), which keeps shards alive
/// across control ticks instead of driving them start-to-finish.
pub(crate) struct FleetShard {
    pub(crate) sim: Simulator,
    pub(crate) kwo: Orchestrator,
    pub(crate) warehouses: Vec<String>,
}

/// Builds one tenant's shard: an account with the tenant's warehouses, a
/// fault-injecting simulator, the submitted traces, and a shard-local
/// orchestrator managing every warehouse. All seeds derive from names;
/// traces go through the simulator's shared-trace arena, so no
/// [`QuerySpec`] is ever cloned here. Used by both the batch fleet run and
/// the serving gateway so the two paths cannot drift apart.
pub(crate) fn build_shard(seed: u64, persistence: bool, tenant: &TenantSpec) -> FleetShard {
    let tenant_seed = derive_stream_seed(seed, &tenant.name);
    let (account, ids) = Account::with_warehouses(
        tenant
            .warehouses
            .iter()
            .map(|w| (w.name.as_str(), w.config.clone())),
    );
    let fault_seed = derive_stream_seed(tenant_seed, "faults");
    let mut sim = Simulator::with_faults(account, tenant.fault_plan.clone(), fault_seed);
    for (w, id) in tenant.warehouses.iter().zip(ids) {
        sim.submit_trace_shared(id, Arc::clone(&w.queries));
    }
    let mut kwo = Orchestrator::new(tenant_seed);
    if persistence {
        kwo.attach_store(Box::new(MemStore::new()), sim.now());
    }
    for w in &tenant.warehouses {
        kwo.manage(&sim, &w.name, w.setup.clone());
    }
    FleetShard {
        sim,
        kwo,
        warehouses: tenant.warehouses.iter().map(|w| w.name.clone()).collect(),
    }
}

/// Rolls one driven shard up into its [`TenantReport`]: per-warehouse
/// savings over `[window_start, window_end)`, invoices (clamped per
/// warehouse), and ops KPIs, folded in managed-warehouse order.
pub(crate) fn tenant_report(
    shard: &FleetShard,
    tenant_name: &str,
    pricing: &ValueBasedPricing,
    window_start: SimTime,
    window_end: SimTime,
) -> TenantReport {
    let now = shard.sim.now();
    let mut warehouses = Vec::with_capacity(shard.warehouses.len());
    for name in &shard.warehouses {
        let savings = shard
            .kwo
            .savings_report(&shard.sim, name, window_start, window_end);
        let invoice = pricing.invoice(&savings);
        // lint: allow(D5) — shard.warehouses lists exactly the names onboard() managed
        let ops = OpsKpis::collect(shard.kwo.optimizer(name).expect("managed warehouse"), now);
        warehouses.push(WarehouseOutcome {
            warehouse: name.clone(),
            savings,
            ops,
            invoice,
        });
    }
    let mut invoice = zero_invoice();
    for w in &warehouses {
        add_invoice(&mut invoice, &w.invoice);
    }
    TenantReport {
        tenant: tenant_name.to_string(),
        estimated_without_keebo: warehouses
            .iter()
            .map(|w| w.savings.estimated_without_keebo)
            .sum(),
        actual_with_keebo: warehouses.iter().map(|w| w.savings.actual_with_keebo).sum(),
        estimated_savings: warehouses.iter().map(|w| w.savings.estimated_savings).sum(),
        ops: OpsKpis::rollup(warehouses.iter().map(|w| &w.ops)),
        invoice,
        warehouses,
    }
}

/// Folds spec-order tenant reports into the fleet-wide rollup. Shared by
/// the batch fleet run and the gateway's end-of-run report.
pub(crate) fn fleet_rollup(tenants: Vec<TenantReport>) -> FleetReport {
    let mut invoice = zero_invoice();
    for t in &tenants {
        add_invoice(&mut invoice, &t.invoice);
    }
    FleetReport {
        warehouses: tenants.iter().map(|t| t.warehouses.len()).sum(),
        estimated_without_keebo: tenants.iter().map(|t| t.estimated_without_keebo).sum(),
        actual_with_keebo: tenants.iter().map(|t| t.actual_with_keebo).sum(),
        estimated_savings: tenants.iter().map(|t| t.estimated_savings).sum(),
        ops: OpsKpis::rollup(tenants.iter().map(|t| &t.ops)),
        invoice,
        tenants,
    }
}

impl FleetController {
    /// A fleet with the given root seed and default value-based pricing.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            pricing: ValueBasedPricing::default(),
            tenants: Arc::new(Vec::new()),
            persistence: false,
        }
    }

    pub fn with_pricing(mut self, pricing: ValueBasedPricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Turns on per-shard durable journaling (an isolated [`MemStore`] per
    /// tenant orchestrator). Persistence is write-path bookkeeping only, so
    /// fleet results stay bit-identical with it on or off — the zero-
    /// perturbation contract the fleet tests pin.
    pub fn with_persistence(mut self) -> Self {
        self.persistence = true;
        self
    }

    pub fn add_tenant(&mut self, tenant: TenantSpec) -> &mut Self {
        Arc::make_mut(&mut self.tenants).push(tenant);
        self
    }

    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    pub fn warehouse_count(&self) -> usize {
        self.tenants.iter().map(|t| t.warehouses.len()).sum()
    }

    /// Runs the whole fleet on a *transient* pool: every tenant observes
    /// until `observe_until`, onboards, then optimizes until `until`.
    /// Shards run concurrently on up to `threads` workers pulling from a
    /// shared work queue; the report is bit-identical for any
    /// `threads >= 1`. Callers driving many runs (the scale bench, repeated
    /// experiments) should create one [`WorkerPool`] and use
    /// [`FleetController::run_on`] to skip the per-run spawn/join churn.
    ///
    /// # Panics
    /// Panics if the fleet has no tenants or `threads == 0`.
    pub fn run(&self, observe_until: SimTime, until: SimTime, threads: usize) -> FleetReport {
        assert!(threads > 0, "need at least one worker thread");
        let pool = WorkerPool::new(threads.min(self.tenants.len()).max(1));
        self.run_on(&pool, observe_until, until, threads)
    }

    /// Like [`FleetController::run`], but on a caller-owned persistent
    /// [`WorkerPool`], using at most `parallelism` of its workers. The
    /// report is bit-identical for any pool size and parallelism.
    ///
    /// # Panics
    /// Panics if the fleet has no tenants or `parallelism == 0`, and
    /// re-raises the first shard panic after the run drains (the pool
    /// itself stays usable).
    pub fn run_on(
        &self,
        pool: &WorkerPool,
        observe_until: SimTime,
        until: SimTime,
        parallelism: usize,
    ) -> FleetReport {
        self.run_on_timed(pool, observe_until, until, parallelism).0
    }

    /// [`FleetController::run_on`] plus per-run wall-clock accounting:
    /// cumulative shard *build* seconds and shard *drive* seconds, kept
    /// apart so benches stop billing trace construction to the simulator
    /// (the timing bug the 4×4 bench shipped with).
    pub fn run_on_timed(
        &self,
        pool: &WorkerPool,
        observe_until: SimTime,
        until: SimTime,
        parallelism: usize,
    ) -> (FleetReport, FleetRunStats) {
        assert!(!self.tenants.is_empty(), "fleet has no tenants");
        assert!(parallelism > 0, "need at least one worker thread");
        let shards = self.tenants.len();
        keebo_obs::global()
            .gauge("keebo.fleet.tenants")
            .set(shards as f64);
        keebo_obs::global()
            .gauge("keebo.fleet.workers")
            .set(parallelism.min(pool.size()).min(shards) as f64);

        let ctx = Arc::new(ShardCtx {
            seed: self.seed,
            pricing: self.pricing,
            persistence: self.persistence,
            tenants: Arc::clone(&self.tenants),
            observe_until,
            until,
            results: Mutex::new(vec![None; shards]),
            build_micros: AtomicU64::new(0),
            drive_micros: AtomicU64::new(0),
        });
        let jobs = Arc::clone(&ctx);
        pool.run_indexed(shards, parallelism, move |index| jobs.run_shard(index));

        let tenants: Vec<TenantReport> = ctx
            .results
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter_mut()
            // lint: allow(D5) — the work queue hands every index to exactly one worker
            .map(|slot| slot.take().expect("every shard reports"))
            .collect();

        let report = fleet_rollup(tenants);
        let stats = FleetRunStats {
            // lint: allow(D11) — write-only wall-time tally, read here after every shard thread has been joined
            build_secs: ctx.build_micros.load(Ordering::Relaxed) as f64 / 1e6,
            // lint: allow(D11) — write-only wall-time tally, read here after every shard thread has been joined
            drive_secs: ctx.drive_micros.load(Ordering::Relaxed) as f64 / 1e6,
        };
        (report, stats)
    }
}

/// Everything a pool job needs to run one shard: the fleet parameters, the
/// shared tenant specs, spec-order result slots, and the build/drive time
/// accumulators. `'static` by construction (all owned or [`Arc`]) so jobs
/// can outlive the `run_on` stack frame on the persistent pool's workers.
struct ShardCtx {
    seed: u64,
    pricing: ValueBasedPricing,
    persistence: bool,
    tenants: Arc<Vec<TenantSpec>>,
    observe_until: SimTime,
    until: SimTime,
    results: Mutex<Vec<Option<TenantReport>>>,
    build_micros: AtomicU64,
    drive_micros: AtomicU64,
}

impl ShardCtx {
    /// Drives one shard through the full lifecycle, rolls up its report
    /// into the spec-order slot, and attributes build vs drive wall time
    /// separately (the old bench lumped both into one window).
    fn run_shard(&self, index: usize) {
        let tenant = &self.tenants[index];
        // lint: allow(D1) — wall time only feeds the build/drive histograms, never a decision
        let t0 = std::time::Instant::now();
        let mut shard = build_shard(self.seed, self.persistence, tenant);
        let build = t0.elapsed();
        // lint: allow(D1) — wall time only feeds the build/drive histograms, never a decision
        let t1 = std::time::Instant::now();
        shard.kwo.observe_until(&mut shard.sim, self.observe_until);
        shard.kwo.onboard(&mut shard.sim);
        shard.kwo.run_until(&mut shard.sim, self.until);

        let report = tenant_report(
            &shard,
            &tenant.name,
            &self.pricing,
            self.observe_until,
            self.until,
        );
        let drive = t1.elapsed();
        self.build_micros
            // lint: allow(D11) — wall-time tally; join synchronizes before the read
            .fetch_add(build.as_micros() as u64, Ordering::Relaxed);
        self.drive_micros
            // lint: allow(D11) — wall-time tally; join synchronizes before the read
            .fetch_add(drive.as_micros() as u64, Ordering::Relaxed);
        let buckets = [1.0, 10.0, 100.0, 500.0, 2_000.0, 10_000.0, 60_000.0];
        keebo_obs::global()
            .histogram("keebo.fleet.shard_build_ms", &buckets)
            .observe(build.as_secs_f64() * 1e3);
        keebo_obs::global()
            .histogram("keebo.fleet.shard_drive_ms", &buckets)
            .observe(drive.as_secs_f64() * 1e3);
        // Recover from poisoning: slots hold plain data, and a panicked
        // sibling shard already propagates via the pool batch.
        self.results.lock().unwrap_or_else(PoisonError::into_inner)[index] = Some(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthState;
    use cdw_sim::{WarehouseSize, DAY_MS, HOUR_MS, MINUTE_MS};
    use workload::{generate_trace, BiWorkload, EtlWorkload};

    fn fast_setup() -> KwoSetup {
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 2,
            refresh_episodes: 0,
            train_interval_ms: 2 * DAY_MS,
            ..KwoSetup::default()
        }
    }

    fn warehouse_spec(name: &str, archetype: usize, seed: u64, days: u64) -> WarehouseSpec {
        let queries = match archetype % 2 {
            0 => generate_trace(
                &EtlWorkload {
                    pipelines: 2,
                    queries_per_run: 2,
                    period_ms: 2 * HOUR_MS,
                    ..EtlWorkload::default()
                },
                0,
                days * DAY_MS,
                seed,
            ),
            _ => generate_trace(
                &BiWorkload {
                    dashboards: 2,
                    queries_per_refresh: 2,
                    peak_refreshes_per_hour: 4.0,
                    ..BiWorkload::default()
                },
                0,
                days * DAY_MS,
                seed,
            ),
        };
        WarehouseSpec {
            name: name.to_string(),
            config: WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(1800),
            setup: fast_setup(),
            queries: queries.into(),
        }
    }

    fn small_fleet(seed: u64, days: u64) -> FleetController {
        let mut fleet = FleetController::new(seed);
        for t in 0..2 {
            let tenant_name = format!("tenant-{t}");
            let mut tenant = TenantSpec::new(&tenant_name);
            for w in 0..2 {
                let name = format!("T{t}_WH{w}");
                let wh_seed = derive_stream_seed(seed, &name);
                tenant = tenant.add_warehouse(warehouse_spec(&name, t * 2 + w, wh_seed, days));
            }
            fleet.add_tenant(tenant);
        }
        fleet
    }

    #[test]
    fn fleet_reports_every_warehouse() {
        let fleet = small_fleet(11, 2);
        let report = fleet.run(DAY_MS, 2 * DAY_MS, 2);
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.warehouses, 4);
        assert!(report.estimated_without_keebo > 0.0);
        assert!(report.actual_with_keebo > 0.0);
        // Invoice identity: charge + customer net == billable savings.
        let inv = &report.invoice;
        assert!(
            (inv.charge_credits + inv.customer_net_credits - inv.billable_savings_credits).abs()
                < 1e-9
        );
    }

    #[test]
    fn fleet_is_bit_identical_across_thread_counts() {
        let fleet = small_fleet(7, 2);
        let one = fleet.run(DAY_MS, 2 * DAY_MS, 1);
        let two = fleet.run(DAY_MS, 2 * DAY_MS, 2);
        let four = fleet.run(DAY_MS, 2 * DAY_MS, 4);
        assert_eq!(one.digest(), two.digest());
        assert_eq!(one.digest(), four.digest());
        // Digest covers the rollups; spot-check raw bits too.
        assert_eq!(
            one.estimated_savings.to_bits(),
            four.estimated_savings.to_bits()
        );
        assert_eq!(one.ops.actions_applied, four.ops.actions_applied);
    }

    #[test]
    fn observability_is_zero_perturbation() {
        // The acceptance bar for the whole observability layer: metrics and
        // tracing on vs off must yield bit-identical fleet results. Metrics
        // are fire-and-forget atomics and the trace only copies values out,
        // so the digest cannot move.
        let fleet = small_fleet(13, 2);
        let metrics_on = fleet.run(DAY_MS, 2 * DAY_MS, 2).digest();
        keebo_obs::set_enabled(false);
        let metrics_off = fleet.run(DAY_MS, 2 * DAY_MS, 2).digest();
        keebo_obs::set_enabled(true);
        assert_eq!(metrics_on, metrics_off, "metrics on/off must not perturb");

        // Tracing disabled entirely (capacity 0) — same digest again.
        let mut no_trace = FleetController::new(13);
        for t in 0..2 {
            let tenant_name = format!("tenant-{t}");
            let mut tenant = TenantSpec::new(&tenant_name);
            for w in 0..2 {
                let name = format!("T{t}_WH{w}");
                let wh_seed = derive_stream_seed(13, &name);
                let mut spec = warehouse_spec(&name, t * 2 + w, wh_seed, 2);
                spec.setup.trace_capacity = 0;
                tenant = tenant.add_warehouse(spec);
            }
            no_trace.add_tenant(tenant);
        }
        let trace_off = no_trace.run(DAY_MS, 2 * DAY_MS, 2).digest();
        assert_eq!(metrics_on, trace_off, "trace on/off must not perturb");
    }

    #[test]
    fn persistence_is_zero_perturbation_across_thread_counts() {
        // Durable journaling is pure write-path bookkeeping: a fleet run
        // with per-shard state stores must produce the same bit-identical
        // digest as one without, at any worker count.
        let plain = small_fleet(21, 2);
        let durable = small_fleet(21, 2).with_persistence();
        let baseline = plain.run(DAY_MS, 2 * DAY_MS, 1).digest();
        for threads in [1, 2, 4] {
            assert_eq!(
                durable.run(DAY_MS, 2 * DAY_MS, threads).digest(),
                baseline,
                "persisted fleet digest diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn tenant_results_do_not_depend_on_fleet_composition() {
        // A tenant's report is identical whether it is the only tenant or
        // one of several: shard streams derive from names, not indices.
        let days = 2;
        let seed = 5;
        let spec = |t: usize| {
            let tenant_name = format!("tenant-{t}");
            let mut tenant = TenantSpec::new(&tenant_name);
            for w in 0..2 {
                let name = format!("T{t}_WH{w}");
                let wh_seed = derive_stream_seed(seed, &name);
                tenant = tenant.add_warehouse(warehouse_spec(&name, w, wh_seed, days));
            }
            tenant
        };

        let mut solo = FleetController::new(seed);
        solo.add_tenant(spec(1));
        let solo_report = solo.run(DAY_MS, days * DAY_MS, 1);

        let mut both = FleetController::new(seed);
        both.add_tenant(spec(0));
        both.add_tenant(spec(1));
        let both_report = both.run(DAY_MS, days * DAY_MS, 2);

        let solo_t = &solo_report.tenants[0];
        let both_t = &both_report.tenants[1];
        assert_eq!(solo_t.tenant, both_t.tenant);
        assert_eq!(
            solo_t.estimated_savings.to_bits(),
            both_t.estimated_savings.to_bits()
        );
        assert_eq!(
            solo_t.warehouses[0].savings.actual_with_keebo.to_bits(),
            both_t.warehouses[0].savings.actual_with_keebo.to_bits()
        );
    }

    #[test]
    fn reused_pool_matches_fresh_pools_bit_for_bit() {
        // The pool-reuse contract: consecutive runs on one persistent pool
        // produce the same digest as runs on freshly spawned pools (which
        // is what `run` uses under the hood).
        let fleet = small_fleet(31, 2);
        let fresh = fleet.run(DAY_MS, 2 * DAY_MS, 2).digest();
        let pool = WorkerPool::new(3);
        let first = fleet.run_on(&pool, DAY_MS, 2 * DAY_MS, 2).digest();
        let second = fleet.run_on(&pool, DAY_MS, 2 * DAY_MS, 3).digest();
        assert_eq!(first, fresh, "persistent pool diverged from fresh pool");
        assert_eq!(second, fresh, "pool reuse perturbed the digest");
    }

    #[test]
    fn pool_wider_and_narrower_than_fleet_both_work() {
        let fleet = small_fleet(33, 2);
        // threads > shards: the extra capacity must idle harmlessly.
        let wide = WorkerPool::new(8);
        let wide_digest = fleet.run_on(&wide, DAY_MS, 2 * DAY_MS, 8).digest();
        // threads = 1: strictly sequential execution.
        let narrow = WorkerPool::new(1);
        let narrow_digest = fleet.run_on(&narrow, DAY_MS, 2 * DAY_MS, 1).digest();
        assert_eq!(wide_digest, narrow_digest);
        assert_eq!(wide_digest, fleet.run(DAY_MS, 2 * DAY_MS, 16).digest());
    }

    #[test]
    fn panicking_shard_surfaces_and_pool_poisons_nothing() {
        // A tenant with duplicate warehouse names panics during shard
        // construction (Account::create_warehouse asserts uniqueness).
        let mut bad = small_fleet(35, 1);
        let mut dupes = TenantSpec::new("dupes");
        for _ in 0..2 {
            let seed = derive_stream_seed(35, "DUP");
            dupes = dupes.add_warehouse(warehouse_spec("DUP", 0, seed, 1));
        }
        bad.add_tenant(dupes);

        let pool = WorkerPool::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bad.run_on(&pool, DAY_MS, DAY_MS, 2)
        }));
        assert!(res.is_err(), "duplicate warehouse shard must panic the run");

        // The pool survives and the next (healthy) fleet run on it matches
        // a fresh-pool digest exactly.
        let good = small_fleet(35, 1);
        assert_eq!(
            good.run_on(&pool, DAY_MS, DAY_MS, 2).digest(),
            good.run(DAY_MS, DAY_MS, 2).digest(),
            "pool poisoned by a panicking shard"
        );
    }

    #[test]
    fn run_stats_separate_build_from_drive() {
        let fleet = small_fleet(37, 2);
        let pool = WorkerPool::new(2);
        let (report, stats) = fleet.run_on_timed(&pool, DAY_MS, 2 * DAY_MS, 2);
        assert_eq!(report.warehouses, 4);
        // Both phases ran; driving two simulated days dominates building.
        assert!(stats.build_secs > 0.0, "build time not attributed");
        assert!(stats.drive_secs > 0.0, "drive time not attributed");
        assert!(
            stats.drive_secs > stats.build_secs,
            "drive ({}) should dominate build ({}) on a multi-day run",
            stats.drive_secs,
            stats.build_secs
        );
    }

    #[test]
    fn digest_is_sensitive_to_every_hashed_field() {
        // Table-driven guard for the digest contract: perturbing any field
        // the digest claims to cover must move it. This is the regression
        // net for the bug where OpsKpis health/staleness/fetch_partials
        // fields silently fell out of the hash.
        let fleet = small_fleet(41, 2);
        let base = fleet.run(DAY_MS, 2 * DAY_MS, 2);
        let base_digest = base.digest();

        type Mutator = (&'static str, fn(&mut FleetReport));
        let mutations: &[Mutator] = &[
            ("tenant name", |r| r.tenants[0].tenant.push('x')),
            ("warehouse name", |r| {
                r.tenants[0].warehouses[0].warehouse.push('x')
            }),
            ("savings.window_start", |r| {
                r.tenants[0].warehouses[0].savings.window_start += 1
            }),
            ("savings.window_end", |r| {
                r.tenants[0].warehouses[0].savings.window_end += 1
            }),
            ("savings.estimated_without_keebo", |r| {
                r.tenants[0].warehouses[0].savings.estimated_without_keebo += 0.5
            }),
            ("savings.actual_with_keebo", |r| {
                r.tenants[0].warehouses[0].savings.actual_with_keebo += 0.5
            }),
            ("savings.estimated_savings", |r| {
                r.tenants[0].warehouses[0].savings.estimated_savings += 0.5
            }),
            ("savings.savings_fraction", |r| {
                r.tenants[0].warehouses[0].savings.savings_fraction += 0.01
            }),
            ("replay.estimated_credits", |r| {
                r.tenants[0].warehouses[0].savings.replay.estimated_credits += 0.5
            }),
            ("replay.hourly", |r| {
                r.tenants[0].warehouses[0]
                    .savings
                    .replay
                    .hourly
                    .add(0, 0.25)
            }),
            ("replay.active_ms", |r| {
                r.tenants[0].warehouses[0].savings.replay.active_ms += 1
            }),
            ("replay.sessions", |r| {
                r.tenants[0].warehouses[0].savings.replay.sessions += 1
            }),
            ("replay.replayed_queries", |r| {
                r.tenants[0].warehouses[0].savings.replay.replayed_queries += 1
            }),
            ("invoice.billable_savings_credits", |r| {
                r.tenants[0].warehouses[0].invoice.billable_savings_credits += 0.5
            }),
            ("invoice.charge_credits", |r| {
                r.tenants[0].warehouses[0].invoice.charge_credits += 0.5
            }),
            ("invoice.customer_net_credits", |r| {
                r.tenants[0].warehouses[0].invoice.customer_net_credits += 0.5
            }),
            ("ops.health", |r| {
                r.tenants[0].warehouses[0].ops.health = HealthState::Frozen
            }),
            ("ops.healthy_ticks", |r| {
                r.tenants[0].warehouses[0].ops.healthy_ticks += 1
            }),
            ("ops.degraded_ticks", |r| {
                r.tenants[0].warehouses[0].ops.degraded_ticks += 1
            }),
            ("ops.frozen_ticks", |r| {
                r.tenants[0].warehouses[0].ops.frozen_ticks += 1
            }),
            ("ops.actions_applied", |r| {
                r.tenants[0].warehouses[0].ops.actions_applied += 1
            }),
            ("ops.actions_failed", |r| {
                r.tenants[0].warehouses[0].ops.actions_failed += 1
            }),
            ("ops.rollbacks", |r| {
                r.tenants[0].warehouses[0].ops.rollbacks += 1
            }),
            ("ops.reconciliations", |r| {
                r.tenants[0].warehouses[0].ops.reconciliations += 1
            }),
            ("ops.transient_retries", |r| {
                r.tenants[0].warehouses[0].ops.transient_retries += 1
            }),
            ("ops.fetch_outages", |r| {
                r.tenants[0].warehouses[0].ops.fetch_outages += 1
            }),
            ("ops.fetch_partials", |r| {
                r.tenants[0].warehouses[0].ops.fetch_partials += 1
            }),
            ("ops.telemetry_staleness_ms", |r| {
                r.tenants[0].warehouses[0].ops.telemetry_staleness_ms += 1
            }),
            ("tenant rollup estimated_savings", |r| {
                r.tenants[0].estimated_savings += 0.5
            }),
            ("tenant rollup invoice", |r| {
                r.tenants[0].invoice.charge_credits += 0.5
            }),
            ("tenant rollup ops", |r| {
                r.tenants[0].ops.fetch_partials += 1
            }),
            ("fleet warehouse count", |r| r.warehouses += 1),
            ("fleet estimated_without_keebo", |r| {
                r.estimated_without_keebo += 0.5
            }),
            ("fleet actual_with_keebo", |r| r.actual_with_keebo += 0.5),
            ("fleet estimated_savings", |r| r.estimated_savings += 0.5),
            ("fleet invoice", |r| r.invoice.customer_net_credits += 0.5),
            ("fleet ops", |r| r.ops.telemetry_staleness_ms += 1),
        ];
        for (field, mutate) in mutations {
            let mut perturbed = base.clone();
            mutate(&mut perturbed);
            assert_ne!(
                perturbed.digest(),
                base_digest,
                "digest is blind to {field}"
            );
        }
    }

    #[test]
    fn rollup_health_is_worst_of_members() {
        let healthy = OpsKpis {
            health: HealthState::Healthy,
            healthy_ticks: 5,
            degraded_ticks: 0,
            frozen_ticks: 0,
            actions_applied: 3,
            actions_failed: 0,
            rollbacks: 0,
            reconciliations: 0,
            transient_retries: 0,
            fetch_outages: 0,
            fetch_partials: 0,
            telemetry_staleness_ms: 10,
        };
        let mut frozen = healthy.clone();
        frozen.health = HealthState::Frozen;
        frozen.telemetry_staleness_ms = 99;
        let rolled = OpsKpis::rollup([&healthy, &frozen]);
        assert_eq!(rolled.health, HealthState::Frozen);
        assert_eq!(rolled.healthy_ticks, 10);
        assert_eq!(rolled.actions_applied, 6);
        assert_eq!(rolled.telemetry_staleness_ms, 99);
    }
}
