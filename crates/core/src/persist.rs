//! Persisted record and snapshot types for the durable control plane.
//!
//! The orchestrator appends one [`PersistRecord`] per control event to its
//! [`crate::store::StateStore`] and periodically writes a full
//! [`SnapshotState`]. Recovery (`Orchestrator::restore`) loads the snapshot
//! and replays the log:
//!
//! * every record carries the *post*-event control state ([`CtlState`]),
//!   imported wholesale after replaying the event's side effects — so the
//!   RNG, cursors, and backoff schedules land exactly where they were;
//! * nondeterministic inputs that recovery cannot re-derive are logged
//!   explicitly: the training seed drawn from the learning RNG, the episode
//!   count in force at the time (onboarding vs refresh), the transition the
//!   agent observed, and the admin's expected config at resume time;
//! * side effects already applied to the surviving simulator/warehouse
//!   (fetch overhead charges, ALTER statements) are *not* re-run — replay
//!   re-ingests telemetry by cursor range and re-trains models, but never
//!   touches the account.
//!
//! All encoding is serde JSON: self-describing, append-friendly, and
//! byte-exact for finite floats (the digest pins in the recovery tests
//! depend on that).

use crate::drng::DetRng;
use crate::health::HealthMonitor;
use crate::monitoring::Monitor;
use crate::orchestrator::KwoSetup;
use crate::reconciler::Reconciler;
use agent::{AgentAction, DqnAgentState, Rule, SliderPosition, Transition};
use cdw_sim::{SimTime, WarehouseConfig};
use costmodel::WarehouseCostModel;
use serde::{Deserialize, Serialize};
use telemetry::{TelemetryFetcher, TelemetryStore};

use crate::actuator::ActionLogEntry;

/// Bumped on any incompatible change to the persisted schema.
pub const FORMAT_VERSION: u32 = 1;

/// Magic prefix of a versioned snapshot envelope. A snapshot that does not
/// start with it is a legacy v0 snapshot (bare JSON, PR 6 format) and is
/// decoded through the legacy path — a v1 reader restores a v0 snapshot
/// bit-identically, which is what makes rolling upgrades safe.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"KWSN";

/// Version of the envelope *framing* (magic + header field encoding), bumped
/// only if the header layout itself changes incompatibly. Orthogonal to
/// [`FORMAT_VERSION`], which versions the body payload.
pub const SNAPSHOT_ENVELOPE_VERSION: u16 = 1;

/// Header field: body format version (u32 LE), mirrors `SnapshotState::version`.
const TAG_BODY_VERSION: u16 = 1;
/// Header field: simulator time at snapshot (u64 LE), mirrors `SnapshotState::at`.
const TAG_AT: u16 = 2;

/// Why persisted state could not be decoded or applied.
#[derive(Debug)]
pub enum PersistError {
    /// Storage-layer failure (open, read, torn snapshot).
    Io(std::io::Error),
    /// Payload bytes did not decode as the expected record/snapshot type.
    Codec(String),
    /// Decoded state is internally inconsistent or does not match the
    /// simulator it is being restored against.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "state store io error: {e}"),
            PersistError::Codec(m) => write!(f, "state decode error: {m}"),
            PersistError::Corrupt(m) => write!(f, "persisted state corrupt: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Post-tick control state of one optimizer: every mutable scalar/cursor the
/// decision loop reads, including the learning RNG. Importing this after a
/// replayed tick puts the optimizer exactly where the original left off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtlState {
    pub expected_config: WarehouseConfig,
    pub slider: SliderPosition,
    pub onboarded: bool,
    pub last_train: SimTime,
    pub last_action: Option<AgentAction>,
    pub prev_state: Option<(Vec<f64>, usize)>,
    pub prev_credits: f64,
    pub prev_dropped: u64,
    pub paused_until: Option<SimTime>,
    pub baseline_p99_ms: f64,
    pub events_cursor: SimTime,
    pub last_good_config: Option<WarehouseConfig>,
    pub pending_auto_suspend: Option<SimTime>,
    pub healthy_streak: u32,
    pub rng: DetRng,
    pub monitor: Monitor,
    pub fetcher: TelemetryFetcher,
    pub reconciler: Reconciler,
    pub health: HealthMonitor,
    pub actuator_cost_per_command: f64,
    pub actuator_max_transient_retries: u32,
    pub actuator_transient_retries: u64,
}

/// A logged retraining pass: the episode count in force (onboarding and
/// refresh differ) and the seed drawn from the learning RNG. The seed is
/// `None` when training took an early path that never reached the episode
/// loop (no recent records, or zero episodes) — the cost model still
/// refreshed, so replay must still run the pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrainRecord {
    pub episodes: usize,
    pub seed: Option<u64>,
}

/// One WAL record. Every control-plane event that mutates optimizer state
/// maps to exactly one record, appended after the event completes.
#[derive(Debug, Clone, Serialize, Deserialize)]
// `Tick` dominating the enum size is fine: records live only long enough to
// be encoded (or decoded and applied), never accumulate in memory.
#[allow(clippy::large_enum_variant)]
pub enum PersistRecord {
    /// First record of a fresh store: written once at attach time, before
    /// any snapshot exists, so a crash in the window between attach and the
    /// first successful snapshot is still recoverable — replay starts from
    /// `Orchestrator::new(seed)` instead of a snapshot. Compacted away by
    /// the first snapshot; a mid-stream `Genesis` is corruption.
    Genesis { seed: u64, at: SimTime },
    /// A warehouse came under management (its learning seed re-derives from
    /// the orchestrator seed and the name; the original config is recorded
    /// because the live config may have changed since).
    Manage {
        warehouse: String,
        original_config: WarehouseConfig,
        setup: KwoSetup,
    },
    /// One control tick (also covers onboarding, which is a fetch + train).
    Tick {
        warehouse: String,
        now: SimTime,
        /// Whether the telemetry fetch succeeded (replay re-ingests the
        /// cursor ranges without re-charging overhead).
        fetched: bool,
        /// A (re)training pass ran this tick.
        retrain: Option<RetrainRecord>,
        /// The transition observed this tick, if any.
        transition: Option<Transition>,
        /// Seed for the train step paired with that transition.
        train_step_seed: Option<u64>,
        /// Action-log entries appended this tick (the ALTERs already ran
        /// against the surviving warehouse; only the record is restored).
        log_delta: Vec<ActionLogEntry>,
        /// Post-tick control state, imported wholesale at replay.
        ctl: CtlState,
    },
    /// The admin moved the cost/performance slider.
    SliderChanged {
        warehouse: String,
        slider: SliderPosition,
    },
    /// The admin added a constraint rule (takes effect at the next
    /// decision's action mask).
    ConstraintAdded { warehouse: String, rule: Rule },
    /// The admin cleared an external-change pause. Carries the config
    /// observed at resume time — the historical simulator state is not
    /// recoverable at replay.
    AdminResume {
        warehouse: String,
        expected_config: WarehouseConfig,
    },
}

/// Everything needed to rebuild one optimizer without replaying history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizerSnapshot {
    pub name: String,
    pub original_config: WarehouseConfig,
    pub setup: KwoSetup,
    pub agent: DqnAgentState,
    pub cost_model: WarehouseCostModel,
    pub telemetry: TelemetryStore,
    pub actuator_log: Vec<ActionLogEntry>,
    pub ctl: CtlState,
}

/// A point-in-time snapshot of the whole orchestrator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotState {
    pub version: u32,
    pub seed: u64,
    /// Simulator time when the snapshot was taken.
    pub at: SimTime,
    pub optimizers: Vec<OptimizerSnapshot>,
}

pub fn encode_record(record: &PersistRecord) -> Result<Vec<u8>, PersistError> {
    serde_json::to_vec(record).map_err(|e| PersistError::Codec(e.to_string()))
}

/// Total decoder: arbitrary bytes yield `Err`, never a panic (fuzzed).
pub fn decode_record(bytes: &[u8]) -> Result<PersistRecord, PersistError> {
    serde_json::from_slice(bytes).map_err(|e| PersistError::Codec(e.to_string()))
}

/// Encodes a snapshot in the current (v1, enveloped) format: `KWSN` magic,
/// envelope version, a tag-length-value header, then the JSON body. The
/// header exists for readers *newer* than this writer: every field is
/// self-delimiting, so a future writer can add fields and this decoder
/// skips the ones it does not know.
pub fn encode_snapshot(snapshot: &SnapshotState) -> Result<Vec<u8>, PersistError> {
    encode_snapshot_with_extra_fields(snapshot, &[])
}

/// As [`encode_snapshot`], with extra header fields appended — simulates a
/// future writer for the forward-compatibility tests. Extra tags must not
/// collide with the known tags (1, 2).
pub fn encode_snapshot_with_extra_fields(
    snapshot: &SnapshotState,
    extra: &[(u16, Vec<u8>)],
) -> Result<Vec<u8>, PersistError> {
    let body = serde_json::to_vec(snapshot).map_err(|e| PersistError::Codec(e.to_string()))?;
    let fields: Vec<(u16, Vec<u8>)> = [
        (TAG_BODY_VERSION, snapshot.version.to_le_bytes().to_vec()),
        (TAG_AT, snapshot.at.to_le_bytes().to_vec()),
    ]
    .into_iter()
    .chain(extra.iter().cloned())
    .collect();
    let field_count = u16::try_from(fields.len())
        .map_err(|_| PersistError::Codec("too many envelope header fields".into()))?;
    let mut out = Vec::with_capacity(body.len() + 64);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_ENVELOPE_VERSION.to_le_bytes());
    out.extend_from_slice(&field_count.to_le_bytes());
    for (tag, value) in &fields {
        let len = u32::try_from(value.len())
            .map_err(|_| PersistError::Codec(format!("envelope field {tag} too large")))?;
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(value);
    }
    out.extend_from_slice(&body);
    Ok(out)
}

/// Encodes a snapshot in the legacy v0 (bare JSON, pre-envelope) format —
/// kept so the upgrade tests can produce exactly what a PR 6 writer wrote.
pub fn encode_snapshot_v0(snapshot: &SnapshotState) -> Result<Vec<u8>, PersistError> {
    serde_json::to_vec(snapshot).map_err(|e| PersistError::Codec(e.to_string()))
}

/// Parses the envelope header, returning the body slice and the body-version
/// header field (if present). Total: truncated or malformed headers yield
/// `Err`, never a panic.
fn decode_envelope(bytes: &[u8]) -> Result<(&[u8], Option<u32>), PersistError> {
    let truncated = || PersistError::Codec("truncated snapshot envelope header".into());
    let rest = bytes.get(SNAPSHOT_MAGIC.len()..).ok_or_else(truncated)?;
    let version = u16::from_le_bytes([
        *rest.first().ok_or_else(truncated)?,
        *rest.get(1).ok_or_else(truncated)?,
    ]);
    if version > SNAPSHOT_ENVELOPE_VERSION {
        // Unlike unknown *fields*, an unknown envelope version may change
        // the framing itself — refuse rather than misread.
        return Err(PersistError::Codec(format!(
            "snapshot envelope v{version} (this build reads up to v{SNAPSHOT_ENVELOPE_VERSION})"
        )));
    }
    let field_count = u16::from_le_bytes([
        *rest.get(2).ok_or_else(truncated)?,
        *rest.get(3).ok_or_else(truncated)?,
    ]);
    let mut pos = 4usize;
    let mut body_version = None;
    for _ in 0..field_count {
        let header = rest.get(pos..pos + 6).ok_or_else(truncated)?;
        let tag = u16::from_le_bytes([header[0], header[1]]);
        let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
        let value = rest
            .get(pos + 6..(pos + 6).checked_add(len).ok_or_else(truncated)?)
            .ok_or_else(truncated)?;
        if tag == TAG_BODY_VERSION && value.len() == 4 {
            body_version = Some(u32::from_le_bytes([value[0], value[1], value[2], value[3]]));
        }
        // Every other tag (including TAG_AT and anything a future writer
        // adds) is advisory: self-delimiting, safe to skip.
        pos += 6 + len;
    }
    Ok((&rest[pos..], body_version))
}

/// Total decoder: arbitrary bytes yield `Err`, never a panic (fuzzed).
/// Reads both the current enveloped format (sniffed by magic) and legacy
/// v0 bare-JSON snapshots.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotState, PersistError> {
    let body = if bytes.starts_with(&SNAPSHOT_MAGIC) {
        let (body, header_version) = decode_envelope(bytes)?;
        if let Some(hv) = header_version {
            if hv != FORMAT_VERSION {
                return Err(PersistError::Corrupt(format!(
                    "snapshot body format v{hv} (this build reads v{FORMAT_VERSION})"
                )));
            }
        }
        body
    } else {
        bytes
    };
    let snap: SnapshotState =
        serde_json::from_slice(body).map_err(|e| PersistError::Codec(e.to_string()))?;
    if snap.version != FORMAT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "snapshot format v{} (this build reads v{FORMAT_VERSION})",
            snap.version
        )));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_snapshot() -> SnapshotState {
        SnapshotState {
            version: FORMAT_VERSION,
            seed: 0xD1CE,
            at: 86_400_000,
            optimizers: Vec::new(),
        }
    }

    #[test]
    fn enveloped_snapshot_round_trips() {
        let snap = empty_snapshot();
        let bytes = encode_snapshot(&snap).unwrap();
        assert!(bytes.starts_with(&SNAPSHOT_MAGIC));
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.seed, snap.seed);
        assert_eq!(back.at, snap.at);
        // Re-encoding is byte-identical: the header derives purely from the
        // body, so digest pins survive a decode/encode cycle.
        assert_eq!(encode_snapshot(&back).unwrap(), bytes);
    }

    #[test]
    fn v1_reader_decodes_legacy_v0_snapshot() {
        let snap = empty_snapshot();
        let v0 = encode_snapshot_v0(&snap).unwrap();
        assert!(!v0.starts_with(&SNAPSHOT_MAGIC));
        let back = decode_snapshot(&v0).unwrap();
        assert_eq!(back.seed, snap.seed);
        assert_eq!(back.at, snap.at);
    }

    #[test]
    fn unknown_header_fields_are_skipped() {
        let snap = empty_snapshot();
        // A "future writer" adding fields this build has never heard of.
        let bytes = encode_snapshot_with_extra_fields(
            &snap,
            &[(0x7777, b"from the future".to_vec()), (0x7778, Vec::new())],
        )
        .unwrap();
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.seed, snap.seed);
    }

    #[test]
    fn truncated_envelope_is_rejected_at_every_length() {
        let bytes = encode_snapshot(&empty_snapshot()).unwrap();
        // Any cut inside the header or body must error, never panic. (Body
        // cuts fail JSON parsing; header cuts fail envelope parsing.)
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn future_envelope_version_is_refused() {
        let mut bytes = encode_snapshot(&empty_snapshot()).unwrap();
        bytes[4..6].copy_from_slice(&(SNAPSHOT_ENVELOPE_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(PersistError::Codec(_))
        ));
    }

    #[test]
    fn mismatched_body_version_header_is_corrupt() {
        let mut snap = empty_snapshot();
        snap.version = FORMAT_VERSION + 1;
        let bytes = encode_snapshot(&snap).unwrap();
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(PersistError::Corrupt(_))
        ));
    }
}

/// What recovery did, for operators and the `recovery` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes dropped from a torn WAL tail.
    pub wal_truncated_bytes: u64,
    /// Size of the snapshot payload the recovery started from.
    pub snapshot_bytes: u64,
    /// Wall-clock time spent in restore (observability only).
    pub recovery_wall_ms: f64,
}
