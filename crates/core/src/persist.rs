//! Persisted record and snapshot types for the durable control plane.
//!
//! The orchestrator appends one [`PersistRecord`] per control event to its
//! [`crate::store::StateStore`] and periodically writes a full
//! [`SnapshotState`]. Recovery (`Orchestrator::restore`) loads the snapshot
//! and replays the log:
//!
//! * every record carries the *post*-event control state ([`CtlState`]),
//!   imported wholesale after replaying the event's side effects — so the
//!   RNG, cursors, and backoff schedules land exactly where they were;
//! * nondeterministic inputs that recovery cannot re-derive are logged
//!   explicitly: the training seed drawn from the learning RNG, the episode
//!   count in force at the time (onboarding vs refresh), the transition the
//!   agent observed, and the admin's expected config at resume time;
//! * side effects already applied to the surviving simulator/warehouse
//!   (fetch overhead charges, ALTER statements) are *not* re-run — replay
//!   re-ingests telemetry by cursor range and re-trains models, but never
//!   touches the account.
//!
//! All encoding is serde JSON: self-describing, append-friendly, and
//! byte-exact for finite floats (the digest pins in the recovery tests
//! depend on that).

use crate::drng::DetRng;
use crate::health::HealthMonitor;
use crate::monitoring::Monitor;
use crate::orchestrator::KwoSetup;
use crate::reconciler::Reconciler;
use agent::{AgentAction, DqnAgentState, Rule, SliderPosition, Transition};
use cdw_sim::{SimTime, WarehouseConfig};
use costmodel::WarehouseCostModel;
use serde::{Deserialize, Serialize};
use telemetry::{TelemetryFetcher, TelemetryStore};

use crate::actuator::ActionLogEntry;

/// Bumped on any incompatible change to the persisted schema.
pub const FORMAT_VERSION: u32 = 1;

/// Why persisted state could not be decoded or applied.
#[derive(Debug)]
pub enum PersistError {
    /// Storage-layer failure (open, read, torn snapshot).
    Io(std::io::Error),
    /// Payload bytes did not decode as the expected record/snapshot type.
    Codec(String),
    /// Decoded state is internally inconsistent or does not match the
    /// simulator it is being restored against.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "state store io error: {e}"),
            PersistError::Codec(m) => write!(f, "state decode error: {m}"),
            PersistError::Corrupt(m) => write!(f, "persisted state corrupt: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Post-tick control state of one optimizer: every mutable scalar/cursor the
/// decision loop reads, including the learning RNG. Importing this after a
/// replayed tick puts the optimizer exactly where the original left off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtlState {
    pub expected_config: WarehouseConfig,
    pub slider: SliderPosition,
    pub onboarded: bool,
    pub last_train: SimTime,
    pub last_action: Option<AgentAction>,
    pub prev_state: Option<(Vec<f64>, usize)>,
    pub prev_credits: f64,
    pub prev_dropped: u64,
    pub paused_until: Option<SimTime>,
    pub baseline_p99_ms: f64,
    pub events_cursor: SimTime,
    pub last_good_config: Option<WarehouseConfig>,
    pub pending_auto_suspend: Option<SimTime>,
    pub healthy_streak: u32,
    pub rng: DetRng,
    pub monitor: Monitor,
    pub fetcher: TelemetryFetcher,
    pub reconciler: Reconciler,
    pub health: HealthMonitor,
    pub actuator_cost_per_command: f64,
    pub actuator_max_transient_retries: u32,
    pub actuator_transient_retries: u64,
}

/// A logged retraining pass: the episode count in force (onboarding and
/// refresh differ) and the seed drawn from the learning RNG. The seed is
/// `None` when training took an early path that never reached the episode
/// loop (no recent records, or zero episodes) — the cost model still
/// refreshed, so replay must still run the pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrainRecord {
    pub episodes: usize,
    pub seed: Option<u64>,
}

/// One WAL record. Every control-plane event that mutates optimizer state
/// maps to exactly one record, appended after the event completes.
#[derive(Debug, Clone, Serialize, Deserialize)]
// `Tick` dominating the enum size is fine: records live only long enough to
// be encoded (or decoded and applied), never accumulate in memory.
#[allow(clippy::large_enum_variant)]
pub enum PersistRecord {
    /// A warehouse came under management (its learning seed re-derives from
    /// the orchestrator seed and the name; the original config is recorded
    /// because the live config may have changed since).
    Manage {
        warehouse: String,
        original_config: WarehouseConfig,
        setup: KwoSetup,
    },
    /// One control tick (also covers onboarding, which is a fetch + train).
    Tick {
        warehouse: String,
        now: SimTime,
        /// Whether the telemetry fetch succeeded (replay re-ingests the
        /// cursor ranges without re-charging overhead).
        fetched: bool,
        /// A (re)training pass ran this tick.
        retrain: Option<RetrainRecord>,
        /// The transition observed this tick, if any.
        transition: Option<Transition>,
        /// Seed for the train step paired with that transition.
        train_step_seed: Option<u64>,
        /// Action-log entries appended this tick (the ALTERs already ran
        /// against the surviving warehouse; only the record is restored).
        log_delta: Vec<ActionLogEntry>,
        /// Post-tick control state, imported wholesale at replay.
        ctl: CtlState,
    },
    /// The admin moved the cost/performance slider.
    SliderChanged {
        warehouse: String,
        slider: SliderPosition,
    },
    /// The admin added a constraint rule (takes effect at the next
    /// decision's action mask).
    ConstraintAdded { warehouse: String, rule: Rule },
    /// The admin cleared an external-change pause. Carries the config
    /// observed at resume time — the historical simulator state is not
    /// recoverable at replay.
    AdminResume {
        warehouse: String,
        expected_config: WarehouseConfig,
    },
}

/// Everything needed to rebuild one optimizer without replaying history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizerSnapshot {
    pub name: String,
    pub original_config: WarehouseConfig,
    pub setup: KwoSetup,
    pub agent: DqnAgentState,
    pub cost_model: WarehouseCostModel,
    pub telemetry: TelemetryStore,
    pub actuator_log: Vec<ActionLogEntry>,
    pub ctl: CtlState,
}

/// A point-in-time snapshot of the whole orchestrator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotState {
    pub version: u32,
    pub seed: u64,
    /// Simulator time when the snapshot was taken.
    pub at: SimTime,
    pub optimizers: Vec<OptimizerSnapshot>,
}

pub fn encode_record(record: &PersistRecord) -> Result<Vec<u8>, PersistError> {
    serde_json::to_vec(record).map_err(|e| PersistError::Codec(e.to_string()))
}

/// Total decoder: arbitrary bytes yield `Err`, never a panic (fuzzed).
pub fn decode_record(bytes: &[u8]) -> Result<PersistRecord, PersistError> {
    serde_json::from_slice(bytes).map_err(|e| PersistError::Codec(e.to_string()))
}

pub fn encode_snapshot(snapshot: &SnapshotState) -> Result<Vec<u8>, PersistError> {
    serde_json::to_vec(snapshot).map_err(|e| PersistError::Codec(e.to_string()))
}

/// Total decoder: arbitrary bytes yield `Err`, never a panic (fuzzed).
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotState, PersistError> {
    let snap: SnapshotState =
        serde_json::from_slice(bytes).map_err(|e| PersistError::Codec(e.to_string()))?;
    if snap.version != FORMAT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "snapshot format v{} (this build reads v{FORMAT_VERSION})",
            snap.version
        )));
    }
    Ok(snap)
}

/// What recovery did, for operators and the `recovery` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes dropped from a torn WAL tail.
    pub wal_truncated_bytes: u64,
    /// Size of the snapshot payload the recovery started from.
    pub snapshot_bytes: u64,
    /// Wall-clock time spent in restore (observability only).
    pub recovery_wall_ms: f64,
}
