//! Persistent worker pool for fleet-scale shard execution.
//!
//! [`crate::fleet::FleetController`] used to spawn throwaway
//! `std::thread::scope` workers on every `run` call. At 4×4 fleets that cost
//! is noise; at 1k-tenant scale the bench re-runs the same fleet at several
//! thread counts and the per-run spawn/join churn (plus the inability to
//! keep any warm state on the workers) starts to matter. [`WorkerPool`]
//! keeps a fixed set of named worker threads alive across runs and feeds
//! them batches of *tickets* — indices into a shard list — through a shared
//! queue.
//!
//! Design constraints, in order:
//!
//! * **Determinism.** The pool never influences results: tickets carry only
//!   an index, every shard is self-contained, and each result lands in a
//!   slot keyed by that index. Which worker ran which ticket is
//!   unobservable in the output — the crown-jewel digest invariant
//!   (`FleetReport::digest` bit-identical at any worker count) survives by
//!   construction.
//! * **Panic safety.** A panicking ticket is caught on the worker, recorded
//!   in the batch, and re-raised on the *submitting* thread once the batch
//!   drains. The worker itself survives — nothing is poisoned, and the pool
//!   is immediately reusable for the next run.
//! * **Work stealing.** Tickets are claimed with an atomic cursor
//!   (`fetch_add`), so a worker that finishes a cheap shard immediately
//!   steals the next index instead of idling behind a static partition.
//!
//! Observability: the pool exports `keebo.fleet.pool.workers`,
//! `keebo.fleet.pool.queue_depth`, and `keebo.fleet.pool.busy_workers`
//! gauges through the global [`keebo_obs`] registry.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a pool mutex, recovering from poisoning. Pool state is plain data
/// (queues and counters) that a panicking job cannot leave torn: jobs run
/// outside the lock and their panics are caught at the ticket boundary.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    work_ready: Condvar,
}

/// State for one batch of tickets submitted via [`WorkerPool::run_indexed`].
struct Batch {
    /// Next unclaimed ticket (the work-stealing cursor).
    next: AtomicUsize,
    tickets: usize,
    /// Worker-jobs still running for this batch.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a ticket, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// A fixed-size pool of persistent worker threads executing indexed ticket
/// batches. Create once, reuse across any number of fleet runs; dropped
/// pools shut their workers down and join them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `size` persistent workers.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "worker pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kwo-fleet-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint: allow(D5) — thread spawn failure at pool construction is unrecoverable setup error
                    .expect("spawn fleet worker")
            })
            .collect();
        keebo_obs::global()
            .gauge("keebo.fleet.pool.workers")
            .set(size as f64);
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Job) {
        let mut state = lock(&self.shared.state);
        state.queue.push_back(job);
        keebo_obs::global()
            .gauge("keebo.fleet.pool.queue_depth")
            .set(state.queue.len() as f64);
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Runs `task(i)` for every ticket `i in 0..tickets`, using at most
    /// `parallelism` workers (clamped to the pool size and the ticket
    /// count), and blocks until the whole batch has drained. Ticket
    /// assignment is work-stealing and racy by design; callers must keep
    /// results independent per index.
    ///
    /// If any ticket panics, the first panic payload is re-raised here
    /// after the batch drains. The worker that caught it keeps running —
    /// the pool stays fully usable.
    ///
    /// # Panics
    /// Re-raises the first ticket panic. Must not be called from inside
    /// one of this pool's own workers (the batch would deadlock waiting
    /// for the worker it occupies).
    pub fn run_indexed(
        &self,
        tickets: usize,
        parallelism: usize,
        task: impl Fn(usize) + Send + Sync + 'static,
    ) {
        if tickets == 0 {
            return;
        }
        let jobs = parallelism.clamp(1, self.size()).min(tickets);
        let task: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(task);
        let batch = Arc::new(Batch {
            next: AtomicUsize::new(0),
            tickets,
            pending: Mutex::new(jobs),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        for _ in 0..jobs {
            let batch = Arc::clone(&batch);
            let task = Arc::clone(&task);
            self.submit(Box::new(move || run_tickets(&batch, &*task)));
        }
        // Wait for every worker-job of this batch to finish.
        let mut pending = lock(&batch.pending);
        while *pending > 0 {
            pending = batch
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
        let payload = lock(&batch.panic).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Drop guard completing one worker-job's participation in a batch: counts
/// the job out of `pending` and wakes the submitter when it was the last.
/// Running this from `Drop` (rather than straight-line code at the end of
/// [`run_tickets`]) means a panic escaping ticket handling itself — not the
/// ticket, which has its own `catch_unwind` — can never strand
/// [`WorkerPool::run_indexed`] waiting on a count that will never reach
/// zero.
struct BatchExit<'a> {
    batch: &'a Batch,
}

impl Drop for BatchExit<'_> {
    fn drop(&mut self) {
        let mut pending = lock(&self.batch.pending);
        *pending -= 1;
        if *pending == 0 {
            self.batch.done.notify_all();
        }
    }
}

/// Claims tickets off the batch cursor until exhausted. A panicking ticket
/// ends this worker-job's participation (mirroring the death of a scoped
/// thread) but leaves the remaining tickets to the batch's other jobs.
///
/// Gauge accounting is unwind-safe by construction: `busy_workers` rides a
/// [`keebo_obs::GaugeGuard`] and the `pending` handoff rides [`BatchExit`],
/// so both are restored on every exit path. The previous paired
/// `add(+1)`/`add(-1)` calls could leave `busy_workers` drifted (and the
/// submitter deadlocked) if anything between them unwound past the ticket
/// boundary.
fn run_tickets(batch: &Batch, task: &(dyn Fn(usize) + Send + Sync)) {
    // Declaration order matters: locals drop in reverse, so `_busy` must
    // come *after* `_exit` — the gauge then decrements before the exit
    // guard wakes the submitter, and a caller observing a drained
    // `run_indexed` never reads a stale busy count.
    let _exit = BatchExit { batch };
    let _busy = keebo_obs::global()
        .gauge("keebo.fleet.pool.busy_workers")
        .add_scoped(1.0);
    loop {
        // lint: allow(D11) — ticket claim: RMW atomicity alone guarantees unique indices; results are published by the batch latch
        let index = batch.next.fetch_add(1, Ordering::Relaxed);
        if index >= batch.tickets {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(index))) {
            let mut slot = lock(&batch.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
            keebo_obs::global()
                .counter("keebo.fleet.pool.ticket_panics")
                .inc();
            break;
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    keebo_obs::global()
                        .gauge("keebo.fleet.pool.queue_depth")
                        .set(state.queue.len() as f64);
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Belt and braces: run_tickets already catches ticket panics, so a
        // panic escaping the job itself is a pool bug — contain it anyway
        // so one bad job can never take a worker down.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            keebo_obs::global()
                .counter("keebo.fleet.pool.job_panics")
                .inc();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            // A worker only exits its loop voluntarily, and ticket/job
            // panics are caught inside it, so join can only fail if the
            // thread was killed externally — nothing to clean up then.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_ticket_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..100).map(|_| AtomicU64::new(0)).collect());
        let sink = Arc::clone(&hits);
        pool.run_indexed(100, 4, move |i| {
            sink[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let sink = Arc::clone(&total);
            pool.run_indexed(10, 2, move |_| {
                sink.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn parallelism_is_clamped_not_fatal() {
        let pool = WorkerPool::new(2);
        let total = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&total);
        // More requested parallelism than workers, more tickets than both.
        pool.run_indexed(7, 64, move |_| {
            sink.fetch_add(1, Ordering::Relaxed);
        });
        let sink = Arc::clone(&total);
        // Zero parallelism clamps up to one worker.
        pool.run_indexed(3, 0, move |_| {
            sink.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn ticket_panic_surfaces_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(4, 2, |i| {
                if i == 2 {
                    panic!("ticket boom");
                }
            });
        }));
        let payload = res.expect_err("batch panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "ticket boom");

        // The pool is not poisoned: the next batch runs normally.
        let total = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&total);
        pool.run_indexed(8, 2, move |_| {
            sink.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_tickets_is_a_noop() {
        let pool = WorkerPool::new(1);
        pool.run_indexed(0, 1, |_| panic!("never called"));
    }
}
