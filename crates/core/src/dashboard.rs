//! Dashboard KPIs (§4.1).
//!
//! "The dashboards offer a comprehensive view of various KPIs, with the
//! ability to filter by time and warehouse name, or aggregate daily, weekly
//! or monthly. The KPIs include metrics such as the CDW spend, the savings
//! brought by KWO, query latency and queue times (both average and 99th
//! percentile), and cost per query."
//!
//! This module computes those aggregates from telemetry; rendering is out of
//! scope (the paper's Fig. 2 is a screenshot). Alongside the cost/latency
//! series, [`OpsKpis`] summarizes the control plane's own reliability:
//! actuation outcomes, retries, rollbacks, reconciliations, telemetry
//! outages, and time spent degraded or frozen.

use crate::health::HealthState;
use crate::orchestrator::WarehouseOptimizer;
use cdw_sim::{HourlyCredits, QueryRecord, SimTime, DAY_MS};
use serde::{Deserialize, Serialize};
use telemetry::percentile;

/// One day's KPI row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyKpis {
    pub day: u64,
    /// Credits billed this day.
    pub spend_credits: f64,
    /// Queries completed this day.
    pub queries: usize,
    pub avg_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub avg_queue_ms: f64,
    pub p99_queue_ms: f64,
    /// Credits per completed query (0 when no queries ran).
    pub cost_per_query: f64,
}

/// Operational / fault KPIs for one managed warehouse — the reliability
/// panel next to the cost charts: is the optimizer healthy, how often did
/// actuation fail, and how much of the time was spent flying blind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpsKpis {
    /// Current health state.
    pub health: HealthState,
    pub healthy_ticks: u64,
    pub degraded_ticks: u64,
    pub frozen_ticks: u64,
    /// Log entries that applied at least one command.
    pub actions_applied: usize,
    /// Log entries whose command list hit a hard failure.
    pub actions_failed: usize,
    /// Monitoring-ordered rollback entries.
    pub rollbacks: usize,
    /// Reconciler re-drive entries.
    pub reconciliations: usize,
    /// In-line retries of transient ALTER errors.
    pub transient_retries: u64,
    /// Telemetry fetches that failed outright.
    pub fetch_outages: u64,
    /// Telemetry fetches that delivered only a partial batch.
    pub fetch_partials: u64,
    /// Age of the freshest telemetry at collection time.
    pub telemetry_staleness_ms: SimTime,
}

impl OpsKpis {
    /// Snapshot of the reliability KPIs for `optimizer` as of `now`.
    pub fn collect(optimizer: &WarehouseOptimizer, now: SimTime) -> Self {
        let act = optimizer.actuator();
        let fetch = optimizer.fetcher().stats();
        let health = optimizer.health();
        Self {
            health: health.state(),
            healthy_ticks: health.healthy_ticks(),
            degraded_ticks: health.degraded_ticks(),
            frozen_ticks: health.frozen_ticks(),
            actions_applied: act.applied_count(),
            actions_failed: act.failure_count(),
            rollbacks: act.rollback_count(),
            reconciliations: act.reconcile_count(),
            transient_retries: act.transient_retries(),
            fetch_outages: fetch.failed_fetches,
            fetch_partials: fetch.partial_fetches,
            telemetry_staleness_ms: optimizer.store().staleness_ms(now),
        }
    }

    /// Severity rank for fleet rollups: `Healthy < Degraded < Frozen`.
    fn severity(state: HealthState) -> u8 {
        match state {
            HealthState::Healthy => 0,
            HealthState::Degraded(_) => 1,
            HealthState::Frozen => 2,
        }
    }

    /// Folds another warehouse's KPIs into this one: counters add, the
    /// rolled-up health is the *worst* member state, and staleness is the
    /// oldest telemetry anywhere in the group.
    pub fn merge(&mut self, other: &OpsKpis) {
        if Self::severity(other.health) > Self::severity(self.health) {
            self.health = other.health;
        }
        self.healthy_ticks += other.healthy_ticks;
        self.degraded_ticks += other.degraded_ticks;
        self.frozen_ticks += other.frozen_ticks;
        self.actions_applied += other.actions_applied;
        self.actions_failed += other.actions_failed;
        self.rollbacks += other.rollbacks;
        self.reconciliations += other.reconciliations;
        self.transient_retries += other.transient_retries;
        self.fetch_outages += other.fetch_outages;
        self.fetch_partials += other.fetch_partials;
        self.telemetry_staleness_ms = self
            .telemetry_staleness_ms
            .max(other.telemetry_staleness_ms);
    }

    /// Rolls a group of per-warehouse KPI snapshots up into one row (an
    /// all-healthy zero row when the group is empty).
    pub fn rollup<'a>(kpis: impl IntoIterator<Item = &'a OpsKpis>) -> OpsKpis {
        let mut acc = OpsKpis {
            health: HealthState::Healthy,
            healthy_ticks: 0,
            degraded_ticks: 0,
            frozen_ticks: 0,
            actions_applied: 0,
            actions_failed: 0,
            rollbacks: 0,
            reconciliations: 0,
            transient_retries: 0,
            fetch_outages: 0,
            fetch_partials: 0,
            telemetry_staleness_ms: 0,
        };
        for k in kpis {
            acc.merge(k);
        }
        acc
    }
}

/// Computes KPI series from query records and billing history.
#[derive(Debug, Clone, Default)]
pub struct Dashboard;

impl Dashboard {
    /// Daily KPI rows covering `[first_day, last_day]` (days with no
    /// activity get zero rows so charts have no holes).
    pub fn daily(
        records: &[QueryRecord],
        billing: &HourlyCredits,
        from: SimTime,
        to: SimTime,
    ) -> Vec<DailyKpis> {
        assert!(to >= from, "empty KPI window");
        let first_day = from / DAY_MS;
        let last_day = to.div_ceil(DAY_MS).max(first_day + 1);
        let spend_by_day = billing.daily_totals();
        (first_day..last_day)
            .map(|day| {
                let day_start = day * DAY_MS;
                let day_end = day_start + DAY_MS;
                let completed: Vec<&QueryRecord> = records
                    .iter()
                    .filter(|r| (day_start..day_end).contains(&r.end))
                    .collect();
                let lats: Vec<f64> = completed
                    .iter()
                    .map(|r| r.total_latency_ms() as f64)
                    .collect();
                let queues: Vec<f64> = completed.iter().map(|r| r.queued_ms() as f64).collect();
                let spend = spend_by_day.get(&day).copied().unwrap_or(0.0);
                let n = completed.len();
                DailyKpis {
                    day,
                    spend_credits: spend,
                    queries: n,
                    avg_latency_ms: mean(&lats),
                    p99_latency_ms: percentile(&lats, 99.0),
                    avg_queue_ms: mean(&queues),
                    p99_queue_ms: percentile(&queues, 99.0),
                    cost_per_query: if n > 0 { spend / n as f64 } else { 0.0 },
                }
            })
            .collect()
    }

    /// Aggregates daily rows into week buckets (7 sim-days).
    pub fn weekly(daily: &[DailyKpis]) -> Vec<DailyKpis> {
        let mut out: Vec<DailyKpis> = Vec::new();
        for row in daily {
            let week = row.day / 7;
            match out.last_mut() {
                Some(acc) if acc.day == week => {
                    // Latency KPIs combine weighted by query count.
                    let total_q = acc.queries + row.queries;
                    if total_q > 0 {
                        let wa = acc.queries as f64;
                        let wb = row.queries as f64;
                        acc.avg_latency_ms =
                            (acc.avg_latency_ms * wa + row.avg_latency_ms * wb) / total_q as f64;
                        acc.avg_queue_ms =
                            (acc.avg_queue_ms * wa + row.avg_queue_ms * wb) / total_q as f64;
                        acc.p99_latency_ms = acc.p99_latency_ms.max(row.p99_latency_ms);
                        acc.p99_queue_ms = acc.p99_queue_ms.max(row.p99_queue_ms);
                    }
                    acc.spend_credits += row.spend_credits;
                    acc.queries = total_q;
                    acc.cost_per_query = if total_q > 0 {
                        acc.spend_credits / total_q as f64
                    } else {
                        0.0
                    };
                }
                _ => {
                    let mut first = row.clone();
                    first.day = week;
                    out.push(first);
                }
            }
        }
        out
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{WarehouseSize, HOUR_MS};

    fn rec(id: u64, arrival: SimTime, start: SimTime, end: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size: WarehouseSize::Small,
            cluster_count: 1,
            text_hash: id,
            template_hash: 0,
            arrival,
            start,
            end,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    fn kpis(health: HealthState, ticks: u64, staleness: SimTime) -> OpsKpis {
        OpsKpis {
            health,
            healthy_ticks: ticks,
            degraded_ticks: ticks / 2,
            frozen_ticks: ticks / 4,
            actions_applied: ticks as usize + 1,
            actions_failed: ticks as usize % 3,
            rollbacks: ticks as usize % 2,
            reconciliations: ticks as usize % 5,
            transient_retries: ticks % 7,
            fetch_outages: ticks % 4,
            fetch_partials: ticks % 6,
            telemetry_staleness_ms: staleness,
        }
    }

    #[test]
    fn rollup_of_empty_group_is_all_healthy_zero_row() {
        let rolled = OpsKpis::rollup([]);
        assert_eq!(rolled.health, HealthState::Healthy);
        assert_eq!(rolled.healthy_ticks, 0);
        assert_eq!(rolled.actions_applied, 0);
        assert_eq!(rolled.telemetry_staleness_ms, 0);
    }

    #[test]
    fn rollup_of_single_element_is_identity() {
        let one = kpis(
            HealthState::Degraded(crate::health::DegradeReason::StaleTelemetry),
            9,
            1234,
        );
        let rolled = OpsKpis::rollup([&one]);
        assert_eq!(rolled, one);
    }

    #[test]
    fn merge_keeps_worst_health_in_both_directions() {
        use crate::health::DegradeReason;
        let healthy = kpis(HealthState::Healthy, 1, 0);
        let degraded = kpis(HealthState::Degraded(DegradeReason::ConfigDrift), 1, 0);
        let frozen = kpis(HealthState::Frozen, 1, 0);

        // Worse absorbs into better...
        let mut acc = healthy.clone();
        acc.merge(&degraded);
        assert_eq!(acc.health, degraded.health);
        acc.merge(&frozen);
        assert_eq!(acc.health, HealthState::Frozen);
        // ...and better never downgrades worse.
        let mut acc = frozen.clone();
        acc.merge(&healthy);
        assert_eq!(acc.health, HealthState::Frozen);
        let mut acc = degraded.clone();
        acc.merge(&healthy);
        assert_eq!(acc.health, degraded.health);
    }

    #[test]
    fn rollup_is_order_independent() {
        use crate::health::DegradeReason;
        let members = [
            kpis(HealthState::Healthy, 3, 100),
            kpis(HealthState::Frozen, 5, 900),
            kpis(
                HealthState::Degraded(DegradeReason::ActuationFailures),
                7,
                400,
            ),
        ];
        let forward = OpsKpis::rollup(members.iter());
        let reverse = OpsKpis::rollup(members.iter().rev());
        assert_eq!(forward, reverse);
        assert_eq!(forward.health, HealthState::Frozen);
        assert_eq!(forward.healthy_ticks, 15);
        assert_eq!(forward.telemetry_staleness_ms, 900);
    }

    #[test]
    fn daily_rows_cover_the_window_without_holes() {
        let rows = Dashboard::daily(&[], &HourlyCredits::new(), 0, 3 * DAY_MS);
        assert_eq!(rows.len(), 3);
        assert!(rows
            .iter()
            .all(|r| r.queries == 0 && r.spend_credits == 0.0));
    }

    #[test]
    fn spend_and_cost_per_query_line_up() {
        let mut billing = HourlyCredits::new();
        billing.add(2 * HOUR_MS, 6.0);
        let records = vec![
            rec(1, HOUR_MS, HOUR_MS, HOUR_MS + 1_000),
            rec(2, HOUR_MS, HOUR_MS, HOUR_MS + 3_000),
            rec(3, HOUR_MS, HOUR_MS + 2_000, HOUR_MS + 4_000),
        ];
        let rows = Dashboard::daily(&records, &billing, 0, DAY_MS);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.queries, 3);
        assert_eq!(r.spend_credits, 6.0);
        assert_eq!(r.cost_per_query, 2.0);
        assert_eq!(r.p99_latency_ms, 4_000.0);
        assert!((r.avg_queue_ms - 2_000.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn queries_attribute_to_completion_day() {
        let records = vec![rec(1, DAY_MS - 1_000, DAY_MS - 1_000, DAY_MS + 1_000)];
        let rows = Dashboard::daily(&records, &HourlyCredits::new(), 0, 2 * DAY_MS);
        assert_eq!(rows[0].queries, 0);
        assert_eq!(rows[1].queries, 1);
    }

    #[test]
    fn weekly_rollup_sums_spend_and_weights_latency() {
        let daily: Vec<DailyKpis> = (0..14)
            .map(|day| DailyKpis {
                day,
                spend_credits: 1.0,
                queries: 10,
                avg_latency_ms: if day < 7 { 100.0 } else { 200.0 },
                p99_latency_ms: day as f64,
                avg_queue_ms: 0.0,
                p99_queue_ms: 0.0,
                cost_per_query: 0.1,
            })
            .collect();
        let weekly = Dashboard::weekly(&daily);
        assert_eq!(weekly.len(), 2);
        assert_eq!(weekly[0].spend_credits, 7.0);
        assert_eq!(weekly[0].queries, 70);
        assert!((weekly[0].avg_latency_ms - 100.0).abs() < 1e-9);
        assert!((weekly[1].avg_latency_ms - 200.0).abs() < 1e-9);
        assert_eq!(weekly[1].p99_latency_ms, 13.0, "p99 is the weekly max");
    }
}
