//! The monitoring component (§4.4).
//!
//! KWO continuously watches each warehouse for three reasons: (1) to feed
//! real-time performance back to the smart model so it can self-correct,
//! (2) to detect sudden load spikes or new patterns that the trained model
//! has not seen, and (3) to detect *external* modifications — an admin or
//! application changing the warehouse underneath Keebo — which immediately
//! pause optimization.

use agent::SliderPosition;
use cdw_sim::{QueryRecord, SimTime, WarehouseEventKind, WarehouseEventRecord};
use serde::{Deserialize, Serialize};
use telemetry::WindowFeatures;

/// Whether a telemetry event records a *configuration* change made by
/// someone other than Keebo. Creation is setup, not interference; and
/// Keebo's own commands (and the simulator's internal scaling) must never
/// count as external.
pub fn is_external_config_change(event: &WarehouseEventRecord) -> bool {
    event.source == cdw_sim::ActionSource::External
        && matches!(
            event.kind,
            WarehouseEventKind::Resized
                | WarehouseEventKind::AutoSuspendChanged
                | WarehouseEventKind::ClusterRangeChanged
                | WarehouseEventKind::PolicyChanged
                | WarehouseEventKind::Suspended
                | WarehouseEventKind::Resumed
        )
}

/// What monitoring observed over the last feedback interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealTimeState {
    /// Window aggregates (latency, queueing, arrival rate...).
    pub window: WindowFeatures,
    /// Queries waiting right now.
    pub queue_depth: usize,
    /// Arrival-rate z-score against the trailing history (spike detector).
    pub load_zscore: f64,
    /// p99 latency over the window relative to the training baseline.
    pub latency_ratio: f64,
    /// An external (non-Keebo) configuration change was detected.
    pub external_change: bool,
    /// Monitoring wants the model to back off to a conservative action.
    pub should_back_off: bool,
}

/// Sliding-statistics monitor for one warehouse. Serializable so the spike
/// detector's trailing history survives a control-plane crash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Monitor {
    /// Trailing per-interval arrival counts for the spike z-score.
    history: Vec<f64>,
    /// Maximum history length (intervals).
    max_history: usize,
    /// Baseline p99 (ms) from training, for the latency ratio.
    pub baseline_p99_ms: f64,
    /// Load z-score beyond which a spike is declared.
    pub spike_zscore: f64,
}

impl Monitor {
    pub fn new(baseline_p99_ms: f64) -> Self {
        Self {
            history: Vec::new(),
            max_history: 288, // two days of 10-minute intervals
            baseline_p99_ms: baseline_p99_ms.max(1.0),
            spike_zscore: 3.0,
        }
    }

    /// Arrival-rate z-score of `value` against the trailing history.
    fn zscore(&self, value: f64) -> f64 {
        if self.history.len() < 6 {
            return 0.0; // too little history to call anything a spike
        }
        let n = self.history.len() as f64;
        let mean = self.history.iter().sum::<f64>() / n;
        let var = self
            .history
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt().max(1e-6);
        (value - mean) / std
    }

    /// Assesses the interval `[now - interval, now)`.
    ///
    /// `records` are completed queries overlapping the interval; `events`
    /// are the warehouse lifecycle events fetched for the same span —
    /// external-change detection is *event-based*: it fires on an
    /// External-source configuration event, not on a config diff. (A diff
    /// can't tell an admin's change from Keebo's own command applied late
    /// or half-applied; those are the reconciler's business, not a pause.)
    /// `queue_depth` and `longest_running_ms` are live readings (a query
    /// slowed 8x by an undersizing does not *complete* for a long time —
    /// its elapsed in-flight time is the early warning); `slider` sets
    /// the back-off thresholds.
    #[allow(clippy::too_many_arguments)]
    pub fn assess(
        &mut self,
        records: &[&QueryRecord],
        events: &[&WarehouseEventRecord],
        now: SimTime,
        interval_ms: SimTime,
        queue_depth: usize,
        longest_running_ms: SimTime,
        slider: SliderPosition,
    ) -> RealTimeState {
        let window = WindowFeatures::compute(records, now.saturating_sub(interval_ms), interval_ms);
        let load_zscore = self.zscore(window.arrivals as f64);
        self.history.push(window.arrivals as f64);
        if self.history.len() > self.max_history {
            self.history.remove(0);
        }

        let completed_ratio = if window.p99_latency_ms > 0.0 {
            window.p99_latency_ms / self.baseline_p99_ms
        } else {
            1.0
        };
        // An in-flight query that has already outlived the baseline p99 is
        // at least that much slower than normal.
        let inflight_ratio = longest_running_ms as f64 / self.baseline_p99_ms;
        let latency_ratio = completed_ratio.max(inflight_ratio);
        let external_change = events.iter().any(|e| is_external_config_change(e));
        let queue_pressure_s = window.mean_queue_ms / 1000.0;
        let should_back_off = !external_change
            && (queue_pressure_s > slider.backoff_queue_threshold_s()
                || latency_ratio > slider.backoff_latency_ratio()
                || queue_depth >= slider.backoff_queue_depth()
                || (load_zscore > self.spike_zscore && queue_depth > 0));

        RealTimeState {
            window,
            queue_depth,
            load_zscore,
            latency_ratio,
            external_change,
            should_back_off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{ActionSource, ScalingPolicy, WarehouseSize, MINUTE_MS};

    fn event(at: SimTime, kind: WarehouseEventKind, source: ActionSource) -> WarehouseEventRecord {
        WarehouseEventRecord {
            warehouse: "WH".into(),
            at,
            kind,
            source,
            size: WarehouseSize::Medium,
            running_clusters: 1,
            auto_suspend_ms: 600_000,
            min_clusters: 1,
            max_clusters: 1,
            scaling_policy: ScalingPolicy::Standard,
        }
    }

    fn rec(id: u64, arrival: SimTime, start: SimTime, end: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size: WarehouseSize::Medium,
            cluster_count: 1,
            text_hash: id,
            template_hash: 0,
            arrival,
            start,
            end,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    fn assess_simple(
        m: &mut Monitor,
        records: &[&QueryRecord],
        now: SimTime,
        queue: usize,
    ) -> RealTimeState {
        m.assess(
            records,
            &[],
            now,
            10 * MINUTE_MS,
            queue,
            0,
            SliderPosition::Balanced,
        )
    }

    #[test]
    fn quiet_interval_raises_nothing() {
        let mut m = Monitor::new(10_000.0);
        let s = assess_simple(&mut m, &[], 10 * MINUTE_MS, 0);
        assert!(!s.should_back_off);
        assert!(!s.external_change);
        assert_eq!(s.load_zscore, 0.0);
    }

    #[test]
    fn external_change_detected_from_external_events() {
        let mut m = Monitor::new(10_000.0);
        // Someone resized the warehouse by hand mid-interval.
        let ev = event(
            5 * MINUTE_MS,
            WarehouseEventKind::Resized,
            ActionSource::External,
        );
        let s = m.assess(
            &[],
            &[&ev],
            10 * MINUTE_MS,
            10 * MINUTE_MS,
            0,
            0,
            SliderPosition::Balanced,
        );
        assert!(s.external_change);
        assert!(
            !s.should_back_off,
            "external change pauses optimization; back-off is separate"
        );
    }

    #[test]
    fn keebo_and_system_events_are_not_external_changes() {
        let mut m = Monitor::new(10_000.0);
        let keebo = event(MINUTE_MS, WarehouseEventKind::Resized, ActionSource::Keebo);
        let system = event(
            2 * MINUTE_MS,
            WarehouseEventKind::ClusterStarted,
            ActionSource::System,
        );
        let created = event(0, WarehouseEventKind::Created, ActionSource::External);
        let s = m.assess(
            &[],
            &[&keebo, &system, &created],
            10 * MINUTE_MS,
            10 * MINUTE_MS,
            0,
            0,
            SliderPosition::Balanced,
        );
        assert!(
            !s.external_change,
            "own actions, autoscaling, and creation must not pause optimization"
        );
    }

    #[test]
    fn external_classifier_covers_all_config_kinds() {
        for kind in [
            WarehouseEventKind::Resized,
            WarehouseEventKind::AutoSuspendChanged,
            WarehouseEventKind::ClusterRangeChanged,
            WarehouseEventKind::PolicyChanged,
            WarehouseEventKind::Suspended,
            WarehouseEventKind::Resumed,
        ] {
            assert!(is_external_config_change(&event(
                0,
                kind,
                ActionSource::External
            )));
            assert!(!is_external_config_change(&event(
                0,
                kind,
                ActionSource::Keebo
            )));
            assert!(!is_external_config_change(&event(
                0,
                kind,
                ActionSource::System
            )));
        }
        assert!(!is_external_config_change(&event(
            0,
            WarehouseEventKind::Created,
            ActionSource::External
        )));
    }

    #[test]
    fn heavy_queueing_triggers_backoff() {
        let mut m = Monitor::new(10_000.0);
        // Queries queued ~60 s each (Balanced threshold is 15 s).
        let now = 10 * MINUTE_MS;
        let recs: Vec<QueryRecord> = (0..5)
            .map(|i| {
                rec(
                    i,
                    now - 300_000,
                    now - 300_000 + 60_000,
                    now - 100_000 + i * 1000,
                )
            })
            .collect();
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let s = assess_simple(&mut m, &refs, now, 3);
        assert!(s.window.mean_queue_ms >= 60_000.0);
        assert!(s.should_back_off);
    }

    #[test]
    fn long_inflight_query_triggers_backoff_before_completion() {
        let mut m = Monitor::new(10_000.0); // baseline p99 = 10 s
                                            // No completions at all, but one query has been running for 60 s —
                                            // six times the baseline, well past Balanced's 1.6x threshold.
        let s = m.assess(
            &[],
            &[],
            10 * MINUTE_MS,
            10 * MINUTE_MS,
            0,
            60_000,
            SliderPosition::Balanced,
        );
        assert!(s.latency_ratio > 5.0);
        assert!(s.should_back_off);
    }

    #[test]
    fn latency_regression_triggers_backoff() {
        let mut m = Monitor::new(1_000.0); // baseline p99 = 1 s
        let now = 10 * MINUTE_MS;
        // Queries now take 10 s end-to-end: ratio 10 > 1.6.
        let recs: Vec<QueryRecord> = (0..5)
            .map(|i| rec(i, now - 60_000 + i, now - 60_000 + i, now - 50_000 + i))
            .collect();
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let s = assess_simple(&mut m, &refs, now, 0);
        assert!(s.latency_ratio > 5.0);
        assert!(s.should_back_off);
    }

    #[test]
    fn slider_changes_backoff_sensitivity() {
        // Mean queue of ~30 s: backs off at Balanced (15 s) but not at
        // LowestCost (120 s).
        let now = 10 * MINUTE_MS;
        let recs: Vec<QueryRecord> = (0..5)
            .map(|i| rec(i, now - 100_000, now - 70_000, now - 60_000 + i))
            .collect();
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let mut m1 = Monitor::new(1_000_000.0);
        let balanced = m1.assess(
            &refs,
            &[],
            now,
            10 * MINUTE_MS,
            0,
            0,
            SliderPosition::Balanced,
        );
        let mut m2 = Monitor::new(1_000_000.0);
        let cheap = m2.assess(
            &refs,
            &[],
            now,
            10 * MINUTE_MS,
            0,
            0,
            SliderPosition::LowestCost,
        );
        assert!(balanced.should_back_off);
        assert!(!cheap.should_back_off);
    }

    #[test]
    fn spike_detection_needs_history_and_queueing() {
        let mut m = Monitor::new(1_000_000.0);
        let now0 = 10 * MINUTE_MS;
        // Build 10 intervals of ~2 arrivals each.
        for i in 0..10u64 {
            let t = now0 + i * 10 * MINUTE_MS;
            let recs: Vec<QueryRecord> = (0..2)
                .map(|j| rec(i * 10 + j, t - 60_000 + j, t - 60_000 + j, t - 50_000 + j))
                .collect();
            let refs: Vec<&QueryRecord> = recs.iter().collect();
            let s = assess_simple(&mut m, &refs, t, 0);
            assert!(!s.should_back_off, "steady load is not a spike");
        }
        // Now a 50-arrival interval with queueing.
        let t = now0 + 10 * 10 * MINUTE_MS;
        let recs: Vec<QueryRecord> = (0..50)
            .map(|j| rec(1000 + j, t - 60_000 + j, t - 60_000 + j, t - 50_000 + j))
            .collect();
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let s = assess_simple(&mut m, &refs, t, 5);
        assert!(s.load_zscore > 3.0, "zscore {}", s.load_zscore);
        assert!(s.should_back_off);
    }
}
