//! The actuator (§4.5): translates smart-model actions into the CDW's own
//! API, executes them, keeps a record of every action taken, and reports
//! errors.
//!
//! The CDW's control plane is allowed to be flaky (see `cdw_sim::faults`),
//! so the actuator distinguishes transient errors — retried a bounded
//! number of times in-line, each attempt billed — from permanent ones,
//! which fail fast. Every entry records *per-command* outcomes: a
//! multi-command action that dies halfway shows exactly which statements
//! landed, which failed, and which were never attempted.

use agent::AgentAction;
use cdw_sim::{
    ActionSource, AlterError, SimTime, Simulator, WarehouseCommand, WarehouseConfig, WarehouseId,
};
use serde::{Deserialize, Serialize};

/// How one action application ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionOutcome {
    /// All commands applied.
    Applied,
    /// Nothing needed doing (NoOp or saturated move).
    NoChange,
    /// The CDW rejected a command; carries the rendered error.
    Failed(String),
}

/// How a single command within an action ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandStatus {
    /// The command took effect.
    Applied,
    /// Benign state race (already suspended / already running).
    NoChange,
    /// The command failed after exhausting retries; carries the error.
    Failed(String),
    /// Never attempted: an earlier command in the same action failed.
    Skipped,
}

/// Per-command record inside one log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandOutcome {
    pub sql: String,
    pub status: CommandStatus,
    /// Attempts made (1 for a clean apply; >1 means transient retries).
    pub attempts: u32,
}

/// What kind of control-plane activity a log entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEntryKind {
    /// A policy (or heuristic) action chosen by the optimizer.
    Action,
    /// A rollback to a previous configuration (back-off, external revert).
    Rollback,
    /// The reconciler re-driving the warehouse toward its desired config.
    Reconcile,
}

/// One entry in the action log — this is what the web portal's "real-time
/// actions taken on each warehouse" view renders (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionLogEntry {
    pub at: SimTime,
    pub warehouse: String,
    pub action: AgentAction,
    /// The SQL the action translated to.
    pub sql: Vec<String>,
    pub outcome: ActionOutcome,
    /// Why the action was chosen ("policy", "backoff", "external-revert").
    pub reason: String,
    /// What produced this entry (policy action, rollback, reconcile).
    pub kind: LogEntryKind,
    /// Outcome of each individual command, in execution order.
    pub commands: Vec<CommandOutcome>,
}

/// Applies actions and remembers everything it did. Serializable so the
/// action log (the portal's audit trail) survives a control-plane crash.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Actuator {
    log: Vec<ActionLogEntry>,
    /// Small credit cost per executed command (ALTER statements are
    /// metadata queries; nearly free but not zero — part of Fig. 6's
    /// overhead accounting).
    pub cost_per_command: f64,
    /// In-line retries per command on transient control-plane errors
    /// (`ServiceUnavailable`/`Throttled`). These model sub-second client
    /// retries, so they don't advance sim time; longer waits are the
    /// reconciler's job (cross-tick exponential backoff).
    pub max_transient_retries: u32,
    retries: u64,
}

impl Actuator {
    pub fn new() -> Self {
        Self {
            log: Vec::new(),
            cost_per_command: 0.0005,
            max_transient_retries: 2,
            retries: 0,
        }
    }

    /// Runs one command, retrying transient errors up to
    /// `max_transient_retries` times; every attempt is billed.
    fn run_command(
        &mut self,
        sim: &mut Simulator,
        wh: WarehouseId,
        cmd: WarehouseCommand,
        now: SimTime,
    ) -> (Result<(), AlterError>, u32) {
        let mut attempts = 0;
        loop {
            attempts += 1;
            sim.account_mut()
                .charge_overhead(now, self.cost_per_command);
            match sim.alter_warehouse(wh, cmd, ActionSource::Keebo) {
                Err(ref e) if e.is_transient() && attempts <= self.max_transient_retries => {
                    self.retries += 1;
                    keebo_obs::global()
                        .counter("keebo.actuator.transient_retries")
                        .inc();
                }
                res => return (res, attempts),
            }
        }
    }

    /// Runs a command list, recording per-command outcomes; commands after
    /// the first hard failure are marked `Skipped`.
    fn run_commands(
        &mut self,
        sim: &mut Simulator,
        wh: WarehouseId,
        warehouse_name: &str,
        commands: &[WarehouseCommand],
    ) -> (ActionOutcome, Vec<CommandOutcome>) {
        let now = sim.now();
        let mut results = Vec::with_capacity(commands.len());
        let mut failed: Option<String> = None;
        let mut any_applied = false;
        for cmd in commands {
            let sql = cmd.to_sql(warehouse_name);
            if failed.is_some() {
                results.push(CommandOutcome {
                    sql,
                    status: CommandStatus::Skipped,
                    attempts: 0,
                });
                continue;
            }
            let (res, attempts) = self.run_command(sim, wh, *cmd, now);
            let status = match res {
                Ok(()) => {
                    any_applied = true;
                    CommandStatus::Applied
                }
                Err(AlterError::AlreadySuspended) | Err(AlterError::AlreadyRunning) => {
                    CommandStatus::NoChange
                }
                Err(e) => {
                    let msg = e.to_string();
                    failed = Some(msg.clone());
                    CommandStatus::Failed(msg)
                }
            };
            results.push(CommandOutcome {
                sql,
                status,
                attempts,
            });
        }
        let outcome = match failed {
            Some(msg) => ActionOutcome::Failed(msg),
            None if any_applied => ActionOutcome::Applied,
            None => ActionOutcome::NoChange,
        };
        let outcome_metric = match &outcome {
            ActionOutcome::Applied => "keebo.actuator.applied",
            ActionOutcome::NoChange => "keebo.actuator.no_change",
            ActionOutcome::Failed(_) => "keebo.actuator.failed",
        };
        keebo_obs::global().counter(outcome_metric).inc();
        (outcome, results)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_entry(
        &mut self,
        at: SimTime,
        warehouse: &str,
        action: AgentAction,
        kind: LogEntryKind,
        outcome: ActionOutcome,
        commands: Vec<CommandOutcome>,
        reason: &str,
    ) {
        self.log.push(ActionLogEntry {
            at,
            warehouse: warehouse.to_string(),
            action,
            sql: commands.iter().map(|c| c.sql.clone()).collect(),
            outcome,
            reason: reason.to_string(),
            kind,
            commands,
        });
    }

    /// Applies `action` from `current` config, charging command overhead and
    /// logging. Benign state races (already suspended/running) count as
    /// `NoChange`; transient control-plane errors are retried in-line.
    pub fn apply(
        &mut self,
        sim: &mut Simulator,
        wh: WarehouseId,
        warehouse_name: &str,
        current: &WarehouseConfig,
        action: AgentAction,
        reason: &str,
    ) -> ActionOutcome {
        let commands = action.to_commands(current);
        let now = sim.now();
        let (outcome, per_command) = self.run_commands(sim, wh, warehouse_name, &commands);
        self.push_entry(
            now,
            warehouse_name,
            action,
            LogEntryKind::Action,
            outcome.clone(),
            per_command,
            reason,
        );
        outcome
    }

    /// Applies raw commands under an explicit entry kind (rollbacks, §4.3
    /// restores, reconciler re-drives — multi-knob moves that aren't a
    /// single agent action). Logged as one entry under `action = NoOp`.
    pub fn apply_commands(
        &mut self,
        sim: &mut Simulator,
        wh: WarehouseId,
        warehouse_name: &str,
        commands: &[WarehouseCommand],
        kind: LogEntryKind,
        reason: &str,
    ) -> ActionOutcome {
        let now = sim.now();
        let (outcome, per_command) = self.run_commands(sim, wh, warehouse_name, commands);
        self.push_entry(
            now,
            warehouse_name,
            AgentAction::NoOp,
            kind,
            outcome.clone(),
            per_command,
            reason,
        );
        outcome
    }

    /// Full action history.
    pub fn log(&self) -> &[ActionLogEntry] {
        &self.log
    }

    /// Count of effective (Applied) actions.
    pub fn applied_count(&self) -> usize {
        self.log
            .iter()
            .filter(|e| e.outcome == ActionOutcome::Applied)
            .count()
    }

    /// Count of failures.
    pub fn failure_count(&self) -> usize {
        self.log
            .iter()
            .filter(|e| matches!(e.outcome, ActionOutcome::Failed(_)))
            .count()
    }

    /// Count of rollback entries.
    pub fn rollback_count(&self) -> usize {
        self.log
            .iter()
            .filter(|e| e.kind == LogEntryKind::Rollback)
            .count()
    }

    /// Count of reconcile entries.
    pub fn reconcile_count(&self) -> usize {
        self.log
            .iter()
            .filter(|e| e.kind == LogEntryKind::Reconcile)
            .count()
    }

    /// Total in-line transient retries performed.
    pub fn transient_retries(&self) -> u64 {
        self.retries
    }

    /// Appends previously recorded entries (WAL replay during crash
    /// recovery — the commands already ran, only the record is restored).
    pub(crate) fn extend_log(&mut self, entries: impl IntoIterator<Item = ActionLogEntry>) {
        self.log.extend(entries);
    }

    /// Restores the transient-retry counter (crash recovery).
    pub(crate) fn set_transient_retries(&mut self, retries: u64) {
        self.retries = retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{Account, FaultPlan, WarehouseSize, HOUR_MS};

    fn setup() -> (Simulator, WarehouseId, WarehouseConfig) {
        let mut account = Account::new();
        let cfg = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
        let wh = account.create_warehouse("WH", cfg.clone());
        (Simulator::new(account), wh, cfg)
    }

    fn setup_faulted(plan: FaultPlan) -> (Simulator, WarehouseId, WarehouseConfig) {
        let mut account = Account::new();
        let cfg = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
        let wh = account.create_warehouse("WH", cfg.clone());
        (Simulator::with_faults(account, plan, 99), wh, cfg)
    }

    #[test]
    fn size_down_applies_and_logs_sql() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        let out = act.apply(&mut sim, wh, "WH", &cfg, AgentAction::SizeDown, "policy");
        assert_eq!(out, ActionOutcome::Applied);
        assert_eq!(act.log().len(), 1);
        assert_eq!(
            act.log()[0].sql,
            vec!["ALTER WAREHOUSE WH SET WAREHOUSE_SIZE=SMALL".to_string()]
        );
        assert_eq!(sim.account().describe(wh).config.size, WarehouseSize::Small);
        assert_eq!(act.applied_count(), 1);
        assert_eq!(act.log()[0].kind, LogEntryKind::Action);
        assert_eq!(act.log()[0].commands.len(), 1);
        assert_eq!(act.log()[0].commands[0].status, CommandStatus::Applied);
        assert_eq!(act.log()[0].commands[0].attempts, 1);
    }

    #[test]
    fn noop_logs_no_change_and_no_overhead() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        let out = act.apply(&mut sim, wh, "WH", &cfg, AgentAction::NoOp, "policy");
        assert_eq!(out, ActionOutcome::NoChange);
        assert_eq!(sim.account().ledger().overhead().total(), 0.0);
    }

    #[test]
    fn commands_charge_overhead() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        act.apply(&mut sim, wh, "WH", &cfg, AgentAction::SizeUp, "policy");
        let overhead = sim.account().ledger().overhead().total();
        assert!((overhead - act.cost_per_command).abs() < 1e-12);
    }

    #[test]
    fn suspending_twice_is_benign() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        assert_eq!(
            act.apply(&mut sim, wh, "WH", &cfg, AgentAction::SuspendNow, "policy"),
            ActionOutcome::NoChange,
            "warehouse starts suspended: AlreadySuspended is benign"
        );
        assert_eq!(act.failure_count(), 0);
        assert_eq!(act.log()[0].commands[0].status, CommandStatus::NoChange);
    }

    #[test]
    fn log_preserves_reason_and_time() {
        let (mut sim, wh, cfg) = setup();
        sim.run_until(12_345);
        let mut act = Actuator::new();
        act.apply(&mut sim, wh, "WH", &cfg, AgentAction::ClustersUp, "backoff");
        let e = &act.log()[0];
        assert_eq!(e.at, 12_345);
        assert_eq!(e.reason, "backoff");
        assert_eq!(e.action, AgentAction::ClustersUp);
    }

    #[test]
    fn transient_errors_are_retried_inline() {
        // Every ALTER in the first hour fails: retries exhaust and fail.
        let plan = FaultPlan::none().with_alter_burst(0, HOUR_MS, 1.0);
        let (mut sim, wh, cfg) = setup_faulted(plan);
        let mut act = Actuator::new();
        let out = act.apply(&mut sim, wh, "WH", &cfg, AgentAction::SizeDown, "policy");
        assert!(matches!(out, ActionOutcome::Failed(_)));
        let e = &act.log()[0];
        assert_eq!(e.commands[0].attempts, 1 + act.max_transient_retries);
        assert_eq!(act.transient_retries() as u32, act.max_transient_retries);
        assert!(matches!(e.commands[0].status, CommandStatus::Failed(_)));
        // Config untouched.
        assert_eq!(
            sim.account().describe(wh).config.size,
            WarehouseSize::Medium
        );
        // Each attempt billed.
        let overhead = sim.account().ledger().overhead().total();
        let expected = act.cost_per_command * (1 + act.max_transient_retries) as f64;
        assert!((overhead - expected).abs() < 1e-12);
    }

    #[test]
    fn retry_succeeds_when_fault_is_intermittent() {
        // ~50% failure probability: with 2 retries most commands get through;
        // run several and require at least one success with attempts > 1.
        let plan = FaultPlan::none().with_alter_burst(0, HOUR_MS, 0.5);
        let (mut sim, wh, _cfg) = setup_faulted(plan);
        let mut act = Actuator::new();
        for _ in 0..12 {
            let cur = sim.account().describe(wh).config.clone();
            let action = if cur.size == WarehouseSize::Medium {
                AgentAction::SizeDown
            } else {
                AgentAction::SizeUp
            };
            act.apply(&mut sim, wh, "WH", &cur, action, "policy");
        }
        let retried_ok = act.log().iter().any(|e| {
            e.commands
                .iter()
                .any(|c| c.status == CommandStatus::Applied && c.attempts > 1)
        });
        assert!(retried_ok, "expected at least one successful retry");
    }

    #[test]
    fn partial_application_marks_later_commands_skipped() {
        let (mut sim, wh, _cfg) = setup();
        let mut act = Actuator::new();
        let cmds = [
            cdw_sim::WarehouseCommand::SetAutoSuspend { ms: 60_000 },
            cdw_sim::WarehouseCommand::SetClusterRange { min: 3, max: 2 }, // invalid
            cdw_sim::WarehouseCommand::SetSize(WarehouseSize::Small),
        ];
        let out = act.apply_commands(
            &mut sim,
            wh,
            "WH",
            &cmds,
            LogEntryKind::Rollback,
            "backoff-rollback",
        );
        assert!(matches!(out, ActionOutcome::Failed(_)));
        let e = &act.log()[0];
        assert_eq!(e.kind, LogEntryKind::Rollback);
        assert_eq!(e.commands[0].status, CommandStatus::Applied);
        assert!(matches!(e.commands[1].status, CommandStatus::Failed(_)));
        assert_eq!(e.commands[2].status, CommandStatus::Skipped);
        assert_eq!(e.commands[2].attempts, 0);
        // The skipped resize really did not run.
        assert_eq!(
            sim.account().describe(wh).config.size,
            WarehouseSize::Medium
        );
        assert_eq!(act.rollback_count(), 1);
    }

    #[test]
    fn permanent_errors_fail_without_retry() {
        let (mut sim, wh, _cfg) = setup();
        let mut act = Actuator::new();
        let cmds = [cdw_sim::WarehouseCommand::SetClusterRange { min: 0, max: 2 }];
        let out = act.apply_commands(
            &mut sim,
            wh,
            "WH",
            &cmds,
            LogEntryKind::Reconcile,
            "reconcile",
        );
        assert!(matches!(out, ActionOutcome::Failed(_)));
        assert_eq!(
            act.log()[0].commands[0].attempts,
            1,
            "no retry on InvalidConfig"
        );
        assert_eq!(act.transient_retries(), 0);
        assert_eq!(act.reconcile_count(), 1);
    }
}
