//! The actuator (§4.5): translates smart-model actions into the CDW's own
//! API, executes them, keeps a record of every action taken, and reports
//! errors.

use agent::AgentAction;
use cdw_sim::{ActionSource, AlterError, SimTime, Simulator, WarehouseConfig, WarehouseId};
use serde::{Deserialize, Serialize};

/// How one action application ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionOutcome {
    /// All commands applied.
    Applied,
    /// Nothing needed doing (NoOp or saturated move).
    NoChange,
    /// The CDW rejected a command; carries the rendered error.
    Failed(String),
}

/// One entry in the action log — this is what the web portal's "real-time
/// actions taken on each warehouse" view renders (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionLogEntry {
    pub at: SimTime,
    pub warehouse: String,
    pub action: AgentAction,
    /// The SQL the action translated to.
    pub sql: Vec<String>,
    pub outcome: ActionOutcome,
    /// Why the action was chosen ("policy", "backoff", "external-revert").
    pub reason: String,
}

/// Applies actions and remembers everything it did.
#[derive(Debug, Default)]
pub struct Actuator {
    log: Vec<ActionLogEntry>,
    /// Small credit cost per executed command (ALTER statements are
    /// metadata queries; nearly free but not zero — part of Fig. 6's
    /// overhead accounting).
    pub cost_per_command: f64,
}

impl Actuator {
    pub fn new() -> Self {
        Self {
            log: Vec::new(),
            cost_per_command: 0.0005,
        }
    }

    /// Applies `action` from `current` config, charging command overhead and
    /// logging. Benign state races (already suspended/running) count as
    /// `NoChange`.
    pub fn apply(
        &mut self,
        sim: &mut Simulator,
        wh: WarehouseId,
        warehouse_name: &str,
        current: &WarehouseConfig,
        action: AgentAction,
        reason: &str,
    ) -> ActionOutcome {
        let commands = action.to_commands(current);
        let now = sim.now();
        let sql: Vec<String> = commands
            .iter()
            .map(|c| c.to_sql(warehouse_name))
            .collect();
        let mut outcome = if commands.is_empty() {
            ActionOutcome::NoChange
        } else {
            ActionOutcome::Applied
        };
        for cmd in commands {
            sim.account_mut()
                .charge_overhead(now, self.cost_per_command);
            match sim.alter_warehouse(wh, cmd, ActionSource::Keebo) {
                Ok(()) => {}
                Err(AlterError::AlreadySuspended) | Err(AlterError::AlreadyRunning) => {
                    outcome = ActionOutcome::NoChange;
                }
                Err(e) => {
                    outcome = ActionOutcome::Failed(e.to_string());
                    break;
                }
            }
        }
        self.log.push(ActionLogEntry {
            at: now,
            warehouse: warehouse_name.to_string(),
            action,
            sql,
            outcome: outcome.clone(),
            reason: reason.to_string(),
        });
        outcome
    }

    /// Applies raw commands (used for §4.3-style rollback of previous
    /// settings, which is not a single knob move). Logged as one entry
    /// under `action = NoOp` with the given reason.
    pub fn apply_commands(
        &mut self,
        sim: &mut Simulator,
        wh: WarehouseId,
        warehouse_name: &str,
        commands: &[cdw_sim::WarehouseCommand],
        reason: &str,
    ) -> ActionOutcome {
        let now = sim.now();
        let sql: Vec<String> = commands
            .iter()
            .map(|c| c.to_sql(warehouse_name))
            .collect();
        let mut outcome = if commands.is_empty() {
            ActionOutcome::NoChange
        } else {
            ActionOutcome::Applied
        };
        for cmd in commands {
            sim.account_mut()
                .charge_overhead(now, self.cost_per_command);
            match sim.alter_warehouse(wh, *cmd, ActionSource::Keebo) {
                Ok(()) => {}
                Err(AlterError::AlreadySuspended) | Err(AlterError::AlreadyRunning) => {
                    outcome = ActionOutcome::NoChange;
                }
                Err(e) => {
                    outcome = ActionOutcome::Failed(e.to_string());
                    break;
                }
            }
        }
        self.log.push(ActionLogEntry {
            at: now,
            warehouse: warehouse_name.to_string(),
            action: AgentAction::NoOp,
            sql,
            outcome: outcome.clone(),
            reason: reason.to_string(),
        });
        outcome
    }

    /// Full action history.
    pub fn log(&self) -> &[ActionLogEntry] {
        &self.log
    }

    /// Count of effective (Applied) actions.
    pub fn applied_count(&self) -> usize {
        self.log
            .iter()
            .filter(|e| e.outcome == ActionOutcome::Applied)
            .count()
    }

    /// Count of failures.
    pub fn failure_count(&self) -> usize {
        self.log
            .iter()
            .filter(|e| matches!(e.outcome, ActionOutcome::Failed(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{Account, WarehouseSize};

    fn setup() -> (Simulator, WarehouseId, WarehouseConfig) {
        let mut account = Account::new();
        let cfg = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
        let wh = account.create_warehouse("WH", cfg.clone());
        (Simulator::new(account), wh, cfg)
    }

    #[test]
    fn size_down_applies_and_logs_sql() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        let out = act.apply(&mut sim, wh, "WH", &cfg, AgentAction::SizeDown, "policy");
        assert_eq!(out, ActionOutcome::Applied);
        assert_eq!(act.log().len(), 1);
        assert_eq!(
            act.log()[0].sql,
            vec!["ALTER WAREHOUSE WH SET WAREHOUSE_SIZE=SMALL".to_string()]
        );
        assert_eq!(sim.account().describe(wh).config.size, WarehouseSize::Small);
        assert_eq!(act.applied_count(), 1);
    }

    #[test]
    fn noop_logs_no_change_and_no_overhead() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        let out = act.apply(&mut sim, wh, "WH", &cfg, AgentAction::NoOp, "policy");
        assert_eq!(out, ActionOutcome::NoChange);
        assert_eq!(sim.account().ledger().overhead().total(), 0.0);
    }

    #[test]
    fn commands_charge_overhead() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        act.apply(&mut sim, wh, "WH", &cfg, AgentAction::SizeUp, "policy");
        let overhead = sim.account().ledger().overhead().total();
        assert!((overhead - act.cost_per_command).abs() < 1e-12);
    }

    #[test]
    fn suspending_twice_is_benign() {
        let (mut sim, wh, cfg) = setup();
        let mut act = Actuator::new();
        assert_eq!(
            act.apply(&mut sim, wh, "WH", &cfg, AgentAction::SuspendNow, "policy"),
            ActionOutcome::NoChange,
            "warehouse starts suspended: AlreadySuspended is benign"
        );
        assert_eq!(act.failure_count(), 0);
    }

    #[test]
    fn log_preserves_reason_and_time() {
        let (mut sim, wh, cfg) = setup();
        sim.run_until(12_345);
        let mut act = Actuator::new();
        act.apply(&mut sim, wh, "WH", &cfg, AgentAction::ClustersUp, "backoff");
        let e = &act.log()[0];
        assert_eq!(e.at, 12_345);
        assert_eq!(e.reason, "backoff");
        assert_eq!(e.action, AgentAction::ClustersUp);
    }
}
