//! Control-plane health: graceful degradation instead of flying blind.
//!
//! §4.4's monitoring already handles *workload* anomalies (back-off on
//! latency spikes). This module handles *platform* anomalies — the
//! optimizer's own inputs and outputs failing:
//!
//! * telemetry goes stale (fetch outages) → don't retrain, don't trust
//!   model features computed from old data; fall back to the last-known-good
//!   policy and conservative heuristics;
//! * actuation keeps failing → stop proposing new optimizations entirely
//!   (frozen) and let the reconciler probe until the control plane heals;
//! * recovery is automatic: the state machine is re-evaluated from live
//!   signals every tick, so when the signals clear, optimization resumes.

use cdw_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why the optimizer is degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// Telemetry older than the staleness threshold: model features and
    /// training data can't be trusted.
    StaleTelemetry,
    /// Recent actuation failures below the freeze threshold: act cautiously.
    ActuationFailures,
    /// Observed config differs from intent (reconciler is mid-repair).
    ConfigDrift,
}

/// The optimizer's operating state for one warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Full optimization: train, predict, act.
    Healthy,
    /// Reduced operation; the reason picks what is withheld.
    Degraded(DegradeReason),
    /// Repeated actuation failures: no new optimization actions at all;
    /// only reconcile probes run until the control plane heals.
    Frozen,
}

impl HealthState {
    /// Stable small integer identifying this state for digests. Every
    /// variant (including each degrade reason) maps to a distinct code, so
    /// hashing it makes [`crate::fleet::FleetReport::digest`] sensitive to
    /// any health divergence. Codes are part of the digest contract: never
    /// renumber, only append.
    pub fn digest_code(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded(DegradeReason::StaleTelemetry) => 1,
            HealthState::Degraded(DegradeReason::ActuationFailures) => 2,
            HealthState::Degraded(DegradeReason::ConfigDrift) => 3,
            HealthState::Frozen => 4,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded(DegradeReason::StaleTelemetry) => {
                write!(f, "degraded (stale telemetry)")
            }
            HealthState::Degraded(DegradeReason::ActuationFailures) => {
                write!(f, "degraded (actuation failures)")
            }
            HealthState::Degraded(DegradeReason::ConfigDrift) => {
                write!(f, "degraded (config drift)")
            }
            HealthState::Frozen => write!(f, "frozen"),
        }
    }
}

/// Thresholds for the health evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthSettings {
    /// Telemetry older than this marks the optimizer degraded.
    pub stale_telemetry_after_ms: SimTime,
    /// Consecutive actuation failures at which optimization freezes.
    pub freeze_after_failures: u32,
}

impl Default for HealthSettings {
    fn default() -> Self {
        Self {
            // Two hours ≈ several realtime ticks and two training fetches.
            stale_telemetry_after_ms: 2 * 60 * 60 * 1000,
            freeze_after_failures: 4,
        }
    }
}

/// The live signals the state machine is evaluated from each tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthSignals {
    /// Age of the telemetry store's data.
    pub telemetry_staleness_ms: SimTime,
    /// Consecutive failed actuation/reconcile attempts.
    pub consecutive_actuation_failures: u32,
    /// Whether observed config currently differs from intent.
    pub config_drift: bool,
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTransition {
    pub at: SimTime,
    pub from: HealthState,
    pub to: HealthState,
}

/// Evaluates [`HealthSignals`] into a [`HealthState`] and keeps history.
/// Serializable so degradation history and tick counters survive a
/// control-plane crash (the chaos KPIs are computed from them).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthMonitor {
    settings: HealthSettings,
    state: HealthState,
    transitions: Vec<HealthTransition>,
    healthy_ticks: u64,
    degraded_ticks: u64,
    frozen_ticks: u64,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new(HealthSettings::default())
    }
}

impl HealthMonitor {
    pub fn new(settings: HealthSettings) -> Self {
        Self {
            settings,
            state: HealthState::Healthy,
            transitions: Vec::new(),
            healthy_ticks: 0,
            degraded_ticks: 0,
            frozen_ticks: 0,
        }
    }

    /// Re-evaluates the state from live signals at `now`. The evaluation is
    /// memoryless — recovery needs no explicit reset, the state simply
    /// follows the signals — and severity is ordered: frozen beats stale
    /// telemetry beats actuation trouble beats drift.
    pub fn evaluate(&mut self, now: SimTime, signals: HealthSignals) -> HealthState {
        let next = if signals.consecutive_actuation_failures >= self.settings.freeze_after_failures
        {
            HealthState::Frozen
        } else if signals.telemetry_staleness_ms > self.settings.stale_telemetry_after_ms {
            HealthState::Degraded(DegradeReason::StaleTelemetry)
        } else if signals.consecutive_actuation_failures > 0 {
            HealthState::Degraded(DegradeReason::ActuationFailures)
        } else if signals.config_drift {
            HealthState::Degraded(DegradeReason::ConfigDrift)
        } else {
            HealthState::Healthy
        };
        if next != self.state {
            self.transitions.push(HealthTransition {
                at: now,
                from: self.state,
                to: next,
            });
            self.state = next;
        }
        match self.state {
            HealthState::Healthy => self.healthy_ticks += 1,
            HealthState::Degraded(_) => self.degraded_ticks += 1,
            HealthState::Frozen => self.frozen_ticks += 1,
        }
        self.state
    }

    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether new optimization actions may be proposed at all.
    pub fn can_optimize(&self) -> bool {
        self.state != HealthState::Frozen
    }

    /// Whether model (re)training on stored telemetry is trustworthy.
    pub fn can_train(&self) -> bool {
        !matches!(
            self.state,
            HealthState::Degraded(DegradeReason::StaleTelemetry) | HealthState::Frozen
        )
    }

    /// Every state change observed so far.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    pub fn healthy_ticks(&self) -> u64 {
        self.healthy_ticks
    }

    pub fn degraded_ticks(&self) -> u64 {
        self.degraded_ticks
    }

    pub fn frozen_ticks(&self) -> u64 {
        self.frozen_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> HealthMonitor {
        HealthMonitor::default()
    }

    #[test]
    fn starts_healthy_and_stays_healthy_on_clean_signals() {
        let mut m = fresh();
        assert_eq!(
            m.evaluate(0, HealthSignals::default()),
            HealthState::Healthy
        );
        assert!(m.can_optimize());
        assert!(m.can_train());
        assert!(m.transitions().is_empty());
        assert_eq!(m.healthy_ticks(), 1);
    }

    #[test]
    fn stale_telemetry_degrades_and_blocks_training() {
        let mut m = fresh();
        let s = HealthSignals {
            telemetry_staleness_ms: 3 * 60 * 60 * 1000,
            ..Default::default()
        };
        assert_eq!(
            m.evaluate(100, s),
            HealthState::Degraded(DegradeReason::StaleTelemetry)
        );
        assert!(m.can_optimize(), "degraded still acts (conservatively)");
        assert!(!m.can_train(), "stale data must not retrain models");
    }

    #[test]
    fn repeated_failures_freeze_then_recover() {
        let mut m = fresh();
        let mut t = 0;
        for fails in 1..4 {
            t += 1;
            assert_eq!(
                m.evaluate(
                    t,
                    HealthSignals {
                        consecutive_actuation_failures: fails,
                        ..Default::default()
                    }
                ),
                HealthState::Degraded(DegradeReason::ActuationFailures)
            );
        }
        t += 1;
        assert_eq!(
            m.evaluate(
                t,
                HealthSignals {
                    consecutive_actuation_failures: 4,
                    ..Default::default()
                }
            ),
            HealthState::Frozen
        );
        assert!(!m.can_optimize());
        assert!(!m.can_train());
        // Control plane heals → a successful probe zeroes the failure count
        // and the machine recovers by itself.
        t += 1;
        assert_eq!(
            m.evaluate(t, HealthSignals::default()),
            HealthState::Healthy
        );
        assert!(m.can_optimize());
        // Transitions: Healthy→Degraded→Frozen→Healthy.
        let tos: Vec<HealthState> = m.transitions().iter().map(|tr| tr.to).collect();
        assert_eq!(
            tos,
            vec![
                HealthState::Degraded(DegradeReason::ActuationFailures),
                HealthState::Frozen,
                HealthState::Healthy
            ]
        );
        assert_eq!(m.frozen_ticks(), 1);
    }

    #[test]
    fn drift_is_the_mildest_degradation() {
        let mut m = fresh();
        assert_eq!(
            m.evaluate(
                0,
                HealthSignals {
                    config_drift: true,
                    ..Default::default()
                }
            ),
            HealthState::Degraded(DegradeReason::ConfigDrift)
        );
        assert!(m.can_train(), "drift alone doesn't invalidate telemetry");
        // Stale telemetry takes precedence over drift.
        assert_eq!(
            m.evaluate(
                1,
                HealthSignals {
                    config_drift: true,
                    telemetry_staleness_ms: 9 * 60 * 60 * 1000,
                    ..Default::default()
                }
            ),
            HealthState::Degraded(DegradeReason::StaleTelemetry)
        );
    }
}
