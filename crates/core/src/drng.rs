//! Deterministic, serializable RNG for persisted control-plane state.
//!
//! The durable control plane (see `store`/`persist`) must be able to freeze
//! an optimizer mid-run and resume it bit-identically after a crash. That
//! requires snapshotting RNG state, which `rand::rngs::StdRng` does not
//! expose. [`DetRng`] is a repo-owned xoshiro256++ generator (the same
//! algorithm family used for the repo's other deterministic streams) whose
//! four-word state serializes with serde. It implements [`rand::RngCore`],
//! so it drops in anywhere a `&mut impl Rng` is accepted.

use serde::{Deserialize, Serialize};

/// xoshiro256++ with splitmix64 seeding; state is `[u64; 4]` and serde-able.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seeds the generator by expanding `seed` through splitmix64 — the
    /// standard xoshiro seeding procedure, so streams never start in the
    /// all-zero (degenerate) state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl rand::RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should differ: {same} collisions");
    }

    #[test]
    fn serde_round_trip_preserves_the_stream() {
        let mut a = DetRng::seed_from_u64(42);
        for _ in 0..13 {
            a.gen::<u64>();
        }
        let json = serde_json::to_string(&a).unwrap();
        let mut b: DetRng = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
        for _ in 0..50 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_and_bool_work_through_rng_trait() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..200 {
            let x = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let j: f64 = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&j));
            let _ = r.gen_bool(0.5);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
