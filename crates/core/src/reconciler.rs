//! Desired-state reconciliation for warehouse configuration.
//!
//! The actuator fires commands; this module remembers what the
//! configuration is *supposed* to be and keeps re-driving the warehouse
//! toward it until the observed config matches. That closes the two gaps a
//! flaky control plane opens:
//!
//! * a command that failed transiently (service blip, throttling) is not
//!   lost — the intent is recorded and retried next tick;
//! * a command the CDW acknowledged but applied late, or a partially
//!   applied multi-command action, converges instead of drifting.
//!
//! Retries follow capped exponential backoff with deterministic jitter
//! drawn from the reconciler's own seeded RNG, so a run is reproducible
//! and simultaneous reconcilers don't retry in lockstep.

use crate::actuator::{ActionOutcome, Actuator, LogEntryKind};
use crate::drng::DetRng;
use cdw_sim::{SimTime, Simulator, WarehouseCommand, WarehouseConfig, WarehouseId, MINUTE_MS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Backoff and convergence tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconcilerSettings {
    /// First retry delay after a failure.
    pub base_backoff_ms: SimTime,
    /// Backoff ceiling.
    pub max_backoff_ms: SimTime,
    /// Jitter as a fraction of the computed backoff (± this fraction).
    pub jitter_fraction: f64,
}

impl Default for ReconcilerSettings {
    fn default() -> Self {
        Self {
            base_backoff_ms: 10 * MINUTE_MS,
            max_backoff_ms: 2 * 60 * MINUTE_MS,
            jitter_fraction: 0.2,
        }
    }
}

/// What one reconciliation pass concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconcileOutcome {
    /// No desired config recorded; nothing to do.
    Idle,
    /// Observed config already matches the desired config.
    InSync,
    /// A retry is scheduled later; this pass did nothing.
    Backoff { until: SimTime },
    /// Drift was found and the repair commands all applied.
    Repaired,
    /// Drift was found but re-driving it failed; backoff extended.
    Failed,
}

/// Tracks the desired configuration of one warehouse and re-drives drift.
/// Fully serializable (the jitter RNG included) so the durable control plane
/// can freeze and resume backoff schedules bit-identically across a crash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reconciler {
    desired: Option<WarehouseConfig>,
    next_attempt_at: SimTime,
    consecutive_failures: u32,
    settings: ReconcilerSettings,
    rng: DetRng,
}

impl Reconciler {
    pub fn new(seed: u64) -> Self {
        Self::with_settings(seed, ReconcilerSettings::default())
    }

    pub fn with_settings(seed: u64, settings: ReconcilerSettings) -> Self {
        Self {
            desired: None,
            next_attempt_at: 0,
            consecutive_failures: 0,
            settings,
            rng: DetRng::seed_from_u64(seed),
        }
    }

    /// Records the configuration the control plane intends the warehouse to
    /// have. Replacing the intent clears any pending backoff — new intent
    /// is actionable immediately.
    pub fn set_desired(&mut self, cfg: WarehouseConfig) {
        self.desired = Some(cfg);
        self.next_attempt_at = 0;
        self.consecutive_failures = 0;
    }

    /// The recorded intent, if any.
    pub fn desired(&self) -> Option<&WarehouseConfig> {
        self.desired.as_ref()
    }

    /// Drops the intent (e.g. when an external change wins and the observed
    /// config becomes the new truth).
    pub fn clear(&mut self) {
        self.desired = None;
        self.next_attempt_at = 0;
        self.consecutive_failures = 0;
    }

    /// Consecutive failed repair attempts (feeds the health state machine).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// When the next repair attempt is allowed (0 = immediately).
    pub fn next_attempt_at(&self) -> SimTime {
        self.next_attempt_at
    }

    /// Commands that transform `observed` into `desired`, knob by knob.
    /// Ordering matters for validity: cluster range and scaling policy are
    /// interdependent (Maximized requires min == max), so the range moves
    /// first when widening and the policy first when it must relax.
    pub fn drift_commands(
        desired: &WarehouseConfig,
        observed: &WarehouseConfig,
    ) -> Vec<WarehouseCommand> {
        let mut cmds = Vec::new();
        if observed.scaling_policy != desired.scaling_policy {
            cmds.push(WarehouseCommand::SetScalingPolicy(desired.scaling_policy));
        }
        if (observed.min_clusters, observed.max_clusters)
            != (desired.min_clusters, desired.max_clusters)
        {
            cmds.push(WarehouseCommand::SetClusterRange {
                min: desired.min_clusters,
                max: desired.max_clusters,
            });
        }
        if observed.size != desired.size {
            cmds.push(WarehouseCommand::SetSize(desired.size));
        }
        if observed.auto_suspend_ms != desired.auto_suspend_ms {
            cmds.push(WarehouseCommand::SetAutoSuspend {
                ms: desired.auto_suspend_ms,
            });
        }
        cmds
    }

    fn schedule_backoff(&mut self, now: SimTime) {
        self.consecutive_failures += 1;
        let exp = self.consecutive_failures.saturating_sub(1).min(16);
        let base = self
            .settings
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.settings.max_backoff_ms);
        // Deterministic jitter in [-f, +f] of the base, never below base/2.
        let f = self.settings.jitter_fraction.clamp(0.0, 0.9);
        let jittered = if f > 0.0 {
            let scale = 1.0 + self.rng.gen_range(-f..f);
            ((base as f64) * scale) as SimTime
        } else {
            base
        };
        self.next_attempt_at = now + jittered.max(self.settings.base_backoff_ms / 2);
    }

    /// One reconciliation pass at `now`: diff observed vs desired and, if
    /// the backoff window allows, re-drive the difference through the
    /// actuator (logged with [`LogEntryKind::Reconcile`]).
    pub fn reconcile(
        &mut self,
        sim: &mut Simulator,
        actuator: &mut Actuator,
        wh: WarehouseId,
        warehouse_name: &str,
    ) -> ReconcileOutcome {
        let now = sim.now();
        let Some(desired) = self.desired.clone() else {
            return ReconcileOutcome::Idle;
        };
        let observed = sim.account().describe(wh).config.clone();
        let cmds = Self::drift_commands(&desired, &observed);
        if cmds.is_empty() {
            self.consecutive_failures = 0;
            self.next_attempt_at = 0;
            return ReconcileOutcome::InSync;
        }
        if now < self.next_attempt_at {
            return ReconcileOutcome::Backoff {
                until: self.next_attempt_at,
            };
        }
        match actuator.apply_commands(
            sim,
            wh,
            warehouse_name,
            &cmds,
            LogEntryKind::Reconcile,
            "reconcile-drift",
        ) {
            ActionOutcome::Failed(_) => {
                self.schedule_backoff(now);
                keebo_obs::global()
                    .counter("keebo.reconciler.retries")
                    .inc();
                ReconcileOutcome::Failed
            }
            _ => {
                self.consecutive_failures = 0;
                self.next_attempt_at = 0;
                keebo_obs::global()
                    .counter("keebo.reconciler.repairs")
                    .inc();
                ReconcileOutcome::Repaired
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{Account, FaultPlan, ScalingPolicy, WarehouseSize, HOUR_MS};

    fn setup(plan: FaultPlan) -> (Simulator, WarehouseId, WarehouseConfig) {
        let mut account = Account::new();
        let cfg = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
        let wh = account.create_warehouse("WH", cfg.clone());
        (Simulator::with_faults(account, plan, 5), wh, cfg)
    }

    #[test]
    fn drift_commands_cover_every_knob() {
        let desired = WarehouseConfig::new(WarehouseSize::Small)
            .with_auto_suspend_secs(120)
            .with_clusters(2, 4)
            .with_policy(ScalingPolicy::Economy);
        let observed = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
        let cmds = Reconciler::drift_commands(&desired, &observed);
        assert_eq!(cmds.len(), 4);
        assert!(cmds.contains(&WarehouseCommand::SetSize(WarehouseSize::Small)));
        assert!(cmds.contains(&WarehouseCommand::SetAutoSuspend { ms: 120_000 }));
        assert!(cmds.contains(&WarehouseCommand::SetClusterRange { min: 2, max: 4 }));
        assert!(cmds.contains(&WarehouseCommand::SetScalingPolicy(ScalingPolicy::Economy)));
        assert!(Reconciler::drift_commands(&desired, &desired).is_empty());
    }

    #[test]
    fn in_sync_when_no_drift() {
        let (mut sim, wh, cfg) = setup(FaultPlan::none());
        let mut rec = Reconciler::new(1);
        let mut act = Actuator::new();
        assert_eq!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::Idle
        );
        rec.set_desired(cfg);
        assert_eq!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::InSync
        );
        assert!(act.log().is_empty(), "no commands issued when in sync");
    }

    #[test]
    fn repairs_drift_toward_desired() {
        let (mut sim, wh, cfg) = setup(FaultPlan::none());
        let mut rec = Reconciler::new(1);
        let mut act = Actuator::new();
        let mut want = cfg;
        want.size = WarehouseSize::Small;
        want.auto_suspend_ms = 60_000;
        rec.set_desired(want.clone());
        assert_eq!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::Repaired
        );
        assert_eq!(sim.account().describe(wh).config, want);
        assert_eq!(act.reconcile_count(), 1);
        // And the next pass sees it in sync.
        assert_eq!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::InSync
        );
    }

    #[test]
    fn failure_schedules_exponential_backoff() {
        // ALTERs always fail for the first 12 hours.
        let (mut sim, wh, cfg) = setup(FaultPlan::none().with_alter_burst(0, 12 * HOUR_MS, 1.0));
        let mut rec = Reconciler::new(1);
        let mut act = Actuator::new();
        let mut want = cfg;
        want.size = WarehouseSize::Small;
        rec.set_desired(want.clone());

        assert_eq!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::Failed
        );
        assert_eq!(rec.consecutive_failures(), 1);
        let first_retry = rec.next_attempt_at();
        assert!(first_retry > 0);

        // Until the backoff elapses the reconciler stays quiet.
        assert!(matches!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::Backoff { .. }
        ));

        // Step past each retry: failures accumulate, gaps grow (up to jitter).
        let mut gaps = Vec::new();
        for _ in 0..3 {
            let at = rec.next_attempt_at();
            sim.run_until(at);
            assert_eq!(
                rec.reconcile(&mut sim, &mut act, wh, "WH"),
                ReconcileOutcome::Failed
            );
            gaps.push(rec.next_attempt_at() - at);
        }
        assert!(gaps[2] > gaps[0], "backoff should grow: {gaps:?}");

        // Once the fault window ends, the next due attempt repairs.
        let at = rec.next_attempt_at().max(12 * HOUR_MS);
        sim.run_until(at);
        assert_eq!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::Repaired
        );
        assert_eq!(rec.consecutive_failures(), 0);
        assert_eq!(sim.account().describe(wh).config, want);
    }

    #[test]
    fn same_seed_same_backoff_schedule() {
        let schedule = |seed: u64| {
            let (mut sim, wh, cfg) =
                setup(FaultPlan::none().with_alter_burst(0, 24 * HOUR_MS, 1.0));
            let mut rec = Reconciler::new(seed);
            let mut act = Actuator::new();
            let mut want = cfg;
            want.size = WarehouseSize::XSmall;
            rec.set_desired(want);
            let mut times = Vec::new();
            for _ in 0..4 {
                rec.reconcile(&mut sim, &mut act, wh, "WH");
                times.push(rec.next_attempt_at());
                sim.run_until(rec.next_attempt_at());
            }
            times
        };
        assert_eq!(schedule(9), schedule(9));
        assert_ne!(
            schedule(9),
            schedule(10),
            "different seeds jitter differently"
        );
    }

    #[test]
    fn new_intent_clears_backoff() {
        let (mut sim, wh, cfg) = setup(FaultPlan::none().with_alter_burst(0, HOUR_MS, 1.0));
        let mut rec = Reconciler::new(1);
        let mut act = Actuator::new();
        let mut want = cfg.clone();
        want.size = WarehouseSize::Small;
        rec.set_desired(want);
        assert_eq!(
            rec.reconcile(&mut sim, &mut act, wh, "WH"),
            ReconcileOutcome::Failed
        );
        assert!(rec.next_attempt_at() > 0);
        let mut want2 = cfg;
        want2.size = WarehouseSize::Large;
        rec.set_desired(want2);
        assert_eq!(
            rec.next_attempt_at(),
            0,
            "fresh intent is immediately actionable"
        );
        assert_eq!(rec.consecutive_failures(), 0);
    }
}
