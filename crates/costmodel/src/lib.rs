//! Keebo's warehouse cost model (§5 of the paper).
//!
//! The cost model answers the *what-if* question: **what would this
//! warehouse have cost without Keebo's optimizations?** Unlike a traditional
//! query-optimizer cost model it emits absolute, billable units (credits)
//! for the *whole warehouse*, not an abstract per-plan score. Its two halves
//! mirror the paper:
//!
//! * **Analytical query replay** ([`replay`]) — iterate over the observed
//!   queries, reconstruct when the warehouse would have been active under
//!   the customer's *original* configuration (size, auto-suspend, cluster
//!   range, scaling policy), and price those active seconds with the exact
//!   billing arithmetic of the CDW (per-second, 60 s minimum per cluster
//!   session).
//! * **Learned parameter estimation** ([`latency`], [`gaps`], [`clusters`])
//!   — regression models calibrated on the warehouse's own history supply
//!   the quantities the replay needs but cannot observe: how query latency
//!   scales across sizes, how arrival gaps shift when dependent queries
//!   move, and how many clusters the original scale-out policy would have
//!   run.
//!
//! The difference between the estimated without-Keebo cost and the actual
//! billed with-Keebo cost is the saving reported to the customer — the basis
//! of value-based pricing (§4.7) and of the reward signal for the smart
//! models (§6).

pub mod auto_suspend;
pub mod clusters;
pub mod gaps;
pub mod latency;
pub mod replay;
pub mod savings;

pub use auto_suspend::AutoSuspendOptimizer;
pub use clusters::ClusterPredictor;
pub use gaps::GapModel;
pub use latency::LatencyScaler;
pub use replay::{ReplayConfig, ReplayOutcome, WarehouseCostModel};
pub use savings::{estimate_savings, SavingsReport};
