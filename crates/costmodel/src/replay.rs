//! The what-if query replay (§5.1).
//!
//! The replay "conceptually replays the queries in the workload" under the
//! customer's **original** configuration to estimate the without-Keebo cost:
//!
//! 1. every observed query's execution time is rescaled to the original
//!    warehouse size with the learned [`LatencyScaler`];
//! 2. dependent queries are re-anchored to their predecessor's *replayed*
//!    completion via the [`GapModel`] (gaps are workload structure, not an
//!    artifact of sizing);
//! 3. queries are scheduled onto the original capacity (max clusters ×
//!    per-cluster concurrency) with a greedy slot simulation;
//! 4. warehouse-active periods are reconstructed — inclusive of idle gaps up
//!    to the original auto-suspend interval, which bill in full before the
//!    warehouse would have shut down;
//! 5. active seconds are priced per mini-window at the original size's
//!    credit rate times the [`ClusterPredictor`]'s cluster count, with the
//!    60-second session minimum applied per resume cycle.

use crate::clusters::{ClusterPredictor, MINI_WINDOW_MS};
use crate::gaps::GapModel;
use crate::latency::LatencyScaler;
use cdw_sim::billing::{exact_f64, span_ms};
use cdw_sim::{HourlyCredits, QueryRecord, SimTime, WarehouseConfig};
use keebo_obs::Histogram;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Distribution of per-query latency rescale deltas (|replayed − observed|
/// execution ms). Large mass in the high buckets means the latency scaler
/// is extrapolating far from the observed size. Observability only.
fn rescale_delta_histogram() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        keebo_obs::global().histogram(
            "costmodel.replay.rescale_delta_ms",
            &[0.0, 10.0, 100.0, 1_000.0, 10_000.0, 60_000.0],
        )
    })
}

/// Inputs to one replay: the configuration to replay *under* (the customer's
/// original, without-Keebo settings) and the window of history to replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// The customer's original configuration (pre-Keebo).
    pub original: WarehouseConfig,
    /// Replay window start (queries are selected by arrival time).
    pub window_start: SimTime,
    /// Replay window end.
    pub window_end: SimTime,
}

/// Result of one replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Estimated without-Keebo credits for the window.
    pub estimated_credits: f64,
    /// Estimated credits per hour bucket.
    pub hourly: HourlyCredits,
    /// Total warehouse-active milliseconds (single-cluster-equivalent).
    pub active_ms: SimTime,
    /// Resume/suspend cycles in the reconstruction.
    pub sessions: usize,
    /// Queries replayed.
    pub replayed_queries: usize,
}

/// The full warehouse cost model: replay + the three learned parameter
/// estimators.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WarehouseCostModel {
    pub latency: LatencyScaler,
    pub gaps: GapModel,
    pub clusters: ClusterPredictor,
}

impl WarehouseCostModel {
    /// Calibrates all parameter models from query history gathered in
    /// `[start, end)` under a configuration with the given concurrency and
    /// cluster limits (§5.2).
    pub fn train(
        records: &[QueryRecord],
        start: SimTime,
        end: SimTime,
        max_concurrency: u32,
        max_clusters: u32,
    ) -> Self {
        Self {
            latency: LatencyScaler::train(records),
            gaps: GapModel::train(records),
            clusters: ClusterPredictor::train(records, start, end, max_concurrency, max_clusters),
        }
    }

    /// Replays `records` under `cfg.original`, returning the estimated
    /// without-Keebo cost. `records` may be a superset; arrival-time
    /// filtering happens here.
    pub fn replay(&self, records: &[QueryRecord], cfg: &ReplayConfig) -> ReplayOutcome {
        let original = &cfg.original;
        debug_assert!(original.validate().is_ok(), "invalid original config");
        keebo_obs::global().counter("costmodel.replay.runs").inc();

        // 1+2: rescale latencies and re-anchor dependent arrivals.
        let mut selected: Vec<&QueryRecord> = records
            .iter()
            .filter(|r| (cfg.window_start..cfg.window_end).contains(&r.arrival))
            .collect();
        selected.sort_by_key(|r| (r.arrival, r.query_id));

        let mut items: Vec<(SimTime, SimTime)> = Vec::with_capacity(selected.len()); // (arrival, exec)
        let mut observed_max_end: Option<SimTime> = None;
        let mut replayed_max_end: Option<SimTime> = None;
        for r in &selected {
            let exec = self
                .latency
                .scale_execution_ms(
                    r.template_hash,
                    exact_f64(r.execution_ms().max(1)),
                    r.size,
                    original.size,
                )
                .round()
                .max(1.0) as SimTime;
            rescale_delta_histogram()
                .observe((exact_f64(exec) - exact_f64(r.execution_ms())).abs());
            let arrival = match (observed_max_end, replayed_max_end) {
                (Some(obs_end), Some(rep_end)) => {
                    match self.gaps.dependent_gap(r.arrival, obs_end) {
                        Some(gap) => rep_end + gap,
                        None => r.arrival,
                    }
                }
                _ => r.arrival,
            };
            observed_max_end = Some(observed_max_end.map_or(r.end, |m| m.max(r.end)));
            replayed_max_end =
                Some(replayed_max_end.map_or(arrival + exec, |m| m.max(arrival + exec)));
            items.push((arrival, exec));
        }
        items.sort_unstable();

        // 3: greedy slot scheduling at the original capacity.
        let capacity = (original.max_clusters as usize * original.max_concurrency as usize).max(1);
        let mut slots: BinaryHeap<Reverse<SimTime>> = (0..capacity).map(|_| Reverse(0)).collect();
        let mut intervals: Vec<(SimTime, SimTime)> = Vec::with_capacity(items.len());
        for (arrival, exec) in items {
            let free = slots.pop().map_or(0, |Reverse(f)| f);
            let start = arrival.max(free);
            let end = start + exec;
            slots.push(Reverse(end));
            intervals.push((start, end));
        }
        intervals.sort_unstable();

        if intervals.is_empty() {
            return ReplayOutcome {
                estimated_credits: 0.0,
                hourly: HourlyCredits::new(),
                active_ms: 0,
                sessions: 0,
                replayed_queries: 0,
            };
        }

        // Per-mini-window demand, for cluster prediction during pricing.
        let horizon = intervals.iter().map(|&(_, e)| e).max().unwrap_or(0);
        let first = intervals.first().map_or(0, |&(s, _)| s);
        // A re-anchored dependent arrival can in principle land before the
        // window origin (gap model quirks); guard the subtraction so release
        // builds clamp to window 0 instead of wrapping SimTime.
        let window_origin = first.min(cfg.window_start);
        let window_of = move |t: SimTime| {
            debug_assert!(
                t >= window_origin,
                "replay time {t} precedes window origin {window_origin}"
            );
            (t.saturating_sub(window_origin) / MINI_WINDOW_MS) as usize
        };
        let n_windows = window_of(horizon) + 1;
        let mut busy_ms = vec![0f64; n_windows];
        let mut arrivals = vec![0f64; n_windows];
        // Union span of activity within each window — concurrency is demand
        // *while active*, so a one-minute burst inside a five-minute window
        // must not be diluted by the idle four minutes.
        let mut span: Vec<(SimTime, SimTime)> = vec![(SimTime::MAX, 0); n_windows];
        let origin = window_origin;
        for &(s, e) in &intervals {
            arrivals[window_of(s)] += 1.0;
            let mut t = s;
            while t < e {
                let w = window_of(t);
                let w_end = origin + (w as SimTime + 1) * MINI_WINDOW_MS;
                let slice_end = e.min(w_end);
                busy_ms[w] += exact_f64(span_ms(t, slice_end));
                span[w].0 = span[w].0.min(t);
                span[w].1 = span[w].1.max(slice_end);
                t = slice_end;
            }
        }
        let clusters_at = |t: SimTime| -> f64 {
            let w = window_of(t).min(n_windows - 1);
            let (lo, hi) = span[w];
            let active_ms = if hi > lo { exact_f64(hi - lo) } else { 0.0 };
            let concurrency = if active_ms > 0.0 {
                busy_ms[w] / active_ms
            } else {
                0.0
            };
            self.clusters.predict(
                concurrency,
                arrivals[w] * 3_600_000.0 / exact_f64(MINI_WINDOW_MS),
                original.max_concurrency,
                original.max_clusters,
            )
        };

        // 4: merge into active periods, then extend by billable idle gaps.
        let mut active: Vec<(SimTime, SimTime)> = Vec::new();
        for (s, e) in intervals.iter().copied() {
            match active.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => active.push((s, e)),
            }
        }
        // Sessions: consecutive active periods whose gap is within the
        // original auto-suspend stay in one billing session (idle time bills);
        // larger gaps bill auto_suspend of idle and then break the session.
        // Note: auto_suspend 0 disables suspension, so every gap bills in
        // full and the reconstruction is one continuous session ending at
        // the last activity (we do not extrapolate an always-on warehouse
        // beyond its last observed work).
        let auto = original.auto_suspend_ms;
        let mut sessions: Vec<(SimTime, SimTime)> = Vec::new();
        for (s, e) in active {
            match sessions.last_mut() {
                // Gap bills in full (warehouse stayed up through it).
                Some(last) if auto == 0 || s <= last.1 + auto => last.1 = last.1.max(e),
                last => {
                    if let Some(last) = last {
                        // Suspend after the auto-suspend tail, then a new session.
                        last.1 += auto;
                    }
                    sessions.push((s, e));
                }
            }
        }
        if auto > 0 {
            if let Some((_, sess_end)) = sessions.last_mut() {
                *sess_end += auto; // trailing idle before the final suspend
            }
        }

        // 5: price each session per mini-window slice.
        let rate_per_ms = original.size.credits_per_second() / 1_000.0;
        let mut hourly = HourlyCredits::new();
        let mut total_active: SimTime = 0;
        for &(s, e) in &sessions {
            total_active += e - s;
            let mut t = s;
            while t < e {
                let w_end = origin + (window_of(t) as SimTime + 1) * MINI_WINDOW_MS;
                let slice_end = e.min(w_end);
                let credits = exact_f64(span_ms(t, slice_end)) * rate_per_ms * clusters_at(t);
                hourly.add(t, credits);
                t = slice_end;
            }
            // 60-second minimum per session (per running cluster at start).
            let dur = e - s;
            if dur < 60_000 {
                let topup = exact_f64(60_000 - dur) * rate_per_ms * clusters_at(s);
                hourly.add(s, topup);
            }
        }

        ReplayOutcome {
            estimated_credits: hourly.total(),
            hourly,
            active_ms: total_active,
            sessions: sessions.len(),
            replayed_queries: selected.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{WarehouseSize, HOUR_MS, MINUTE_MS, SECOND_MS};

    fn rec(id: u64, arrival: SimTime, exec_ms: SimTime, size: WarehouseSize) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size,
            cluster_count: 1,
            text_hash: id,
            template_hash: 1,
            arrival,
            start: arrival,
            end: arrival + exec_ms,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    fn cfg(size: WarehouseSize, auto_suspend_secs: u64) -> ReplayConfig {
        ReplayConfig {
            original: WarehouseConfig::new(size).with_auto_suspend_secs(auto_suspend_secs),
            window_start: 0,
            window_end: 24 * HOUR_MS,
        }
    }

    #[test]
    fn empty_history_costs_nothing() {
        let m = WarehouseCostModel::default();
        let out = m.replay(&[], &cfg(WarehouseSize::Small, 60));
        assert_eq!(out.estimated_credits, 0.0);
        assert_eq!(out.sessions, 0);
        assert_eq!(out.replayed_queries, 0);
    }

    #[test]
    fn single_query_bills_exec_plus_auto_suspend() {
        let m = WarehouseCostModel::default();
        // 10-minute query at the original size, 60 s auto-suspend.
        let out = m.replay(
            &[rec(1, 0, 10 * MINUTE_MS, WarehouseSize::Small)],
            &cfg(WarehouseSize::Small, 60),
        );
        let expected_ms = 10 * MINUTE_MS + 60 * SECOND_MS;
        assert_eq!(out.active_ms, expected_ms);
        assert_eq!(out.sessions, 1);
        let expected_credits =
            expected_ms as f64 / 1000.0 * WarehouseSize::Small.credits_per_second();
        assert!((out.estimated_credits - expected_credits).abs() < 1e-9);
    }

    #[test]
    fn short_query_pays_the_sixty_second_minimum() {
        let m = WarehouseCostModel::default();
        // 5 s query with auto-suspend 10 s: active 15 s < 60 s minimum.
        let out = m.replay(
            &[rec(1, 0, 5 * SECOND_MS, WarehouseSize::XSmall)],
            &cfg(WarehouseSize::XSmall, 10),
        );
        let min_credits = 60.0 * WarehouseSize::XSmall.credits_per_second();
        assert!(
            (out.estimated_credits - min_credits).abs() < 1e-9,
            "got {} want {min_credits}",
            out.estimated_credits
        );
    }

    #[test]
    fn gaps_within_auto_suspend_bill_in_full() {
        let m = WarehouseCostModel::default();
        // Two 1-minute queries separated by a 5-minute gap, auto-suspend 10
        // minutes: the warehouse never suspends, billing runs continuously.
        let recs = vec![
            rec(1, 0, MINUTE_MS, WarehouseSize::XSmall),
            rec(2, 6 * MINUTE_MS, MINUTE_MS, WarehouseSize::XSmall),
        ];
        let out = m.replay(&recs, &cfg(WarehouseSize::XSmall, 600));
        assert_eq!(out.sessions, 1);
        // 0..7 min active + 10 min trailing auto-suspend = 17 min.
        assert_eq!(out.active_ms, 17 * MINUTE_MS);
    }

    #[test]
    fn gaps_beyond_auto_suspend_split_sessions() {
        let m = WarehouseCostModel::default();
        // Two bursts an hour apart with 60 s auto-suspend.
        let recs = vec![
            rec(1, 0, 2 * MINUTE_MS, WarehouseSize::XSmall),
            rec(2, HOUR_MS, 2 * MINUTE_MS, WarehouseSize::XSmall),
        ];
        let out = m.replay(&recs, &cfg(WarehouseSize::XSmall, 60));
        assert_eq!(out.sessions, 2);
        // Each session: 2 min exec + 1 min tail.
        assert_eq!(out.active_ms, 2 * 3 * MINUTE_MS);
    }

    #[test]
    fn larger_original_size_costs_more_for_serial_work() {
        // With the default (untrained) scaler the slope is -1: latency halves
        // as size doubles, so pure execution cost is size-invariant — but the
        // auto-suspend tail is charged at the bigger rate, so bigger original
        // sizes estimate higher cost for sparse workloads.
        let m = WarehouseCostModel::default();
        let recs = vec![rec(1, 0, 8 * MINUTE_MS, WarehouseSize::XSmall)];
        let small = m.replay(&recs, &cfg(WarehouseSize::XSmall, 600));
        let large = m.replay(&recs, &cfg(WarehouseSize::Large, 600));
        assert!(
            large.estimated_credits > small.estimated_credits,
            "large {} vs small {}",
            large.estimated_credits,
            small.estimated_credits
        );
    }

    #[test]
    fn latency_rescaling_uses_observed_size() {
        // Query observed on Medium (downsized world); replay at original
        // X-Small should scale execution back up 4x under the default slope.
        let m = WarehouseCostModel::default();
        let out = m.replay(
            &[rec(1, 0, 10 * MINUTE_MS, WarehouseSize::Medium)],
            &cfg(WarehouseSize::XSmall, 0),
        );
        assert_eq!(out.active_ms, 40 * MINUTE_MS);
    }

    #[test]
    fn dependent_chain_moves_with_replayed_latencies() {
        // Chained ETL observed on Medium: q2 arrives 5 s after q1 ends.
        // Replayed on X-Small (4x slower), q2 should still arrive 5 s after
        // the *replayed* q1 end — stretching the overall timeline.
        let m = WarehouseCostModel {
            gaps: GapModel {
                dependency_threshold_ms: 30_000,
                median_dependent_gap_ms: 5_000,
                dependent_fraction: 1.0,
            },
            ..WarehouseCostModel::default()
        };
        let recs = vec![
            rec(1, 0, 10 * MINUTE_MS, WarehouseSize::Medium),
            rec(
                2,
                10 * MINUTE_MS + 5 * SECOND_MS,
                10 * MINUTE_MS,
                WarehouseSize::Medium,
            ),
        ];
        let out = m.replay(&recs, &cfg(WarehouseSize::XSmall, 0));
        // Each query: 40 min replayed. Chain: 40 min + 5 s + 40 min.
        assert_eq!(out.active_ms, 80 * MINUTE_MS + 5 * SECOND_MS);
        assert_eq!(out.sessions, 1);
    }

    #[test]
    fn concurrency_beyond_capacity_queues() {
        let m = WarehouseCostModel::default();
        // 16 one-minute queries at once, single cluster with 8 slots: two
        // serial batches -> active span 2 minutes (plus nothing else).
        let recs: Vec<QueryRecord> = (0..16)
            .map(|i| rec(i, 0, MINUTE_MS, WarehouseSize::XSmall))
            .collect();
        let out = m.replay(&recs, &cfg(WarehouseSize::XSmall, 0));
        assert_eq!(out.active_ms, 2 * MINUTE_MS);
    }

    #[test]
    fn window_filter_excludes_out_of_range_queries() {
        let m = WarehouseCostModel::default();
        let recs = vec![
            rec(1, 0, MINUTE_MS, WarehouseSize::XSmall),
            rec(2, 48 * HOUR_MS, MINUTE_MS, WarehouseSize::XSmall),
        ];
        let out = m.replay(&recs, &cfg(WarehouseSize::XSmall, 60));
        assert_eq!(out.replayed_queries, 1);
    }

    #[test]
    fn hourly_breakdown_sums_to_total() {
        let m = WarehouseCostModel::default();
        let recs: Vec<QueryRecord> = (0..20)
            .map(|i| rec(i, i * 20 * MINUTE_MS, 5 * MINUTE_MS, WarehouseSize::Small))
            .collect();
        let out = m.replay(&recs, &cfg(WarehouseSize::Small, 300));
        assert!((out.hourly.total() - out.estimated_credits).abs() < 1e-9);
        assert!(out.hourly.iter().count() > 1, "spans multiple hours");
    }

    #[test]
    fn multicluster_original_prices_parallelism() {
        let m = WarehouseCostModel::default();
        // 32 concurrent one-minute queries; original config allows 4 clusters
        // x8 slots, so everything runs at once on ~4 clusters.
        let recs: Vec<QueryRecord> = (0..32)
            .map(|i| rec(i, 0, MINUTE_MS, WarehouseSize::XSmall))
            .collect();
        let mut c = cfg(WarehouseSize::XSmall, 0);
        c.original = c.original.with_clusters(1, 4);
        let out = m.replay(&recs, &c);
        // Active span 1 minute, but priced at ~4 clusters.
        assert_eq!(out.active_ms, MINUTE_MS);
        let single_cluster_credits = 60.0 * WarehouseSize::XSmall.credits_per_second();
        assert!(
            out.estimated_credits > 3.0 * single_cluster_credits,
            "got {} want > {}",
            out.estimated_credits,
            3.0 * single_cluster_credits
        );
    }
}
