//! Analytic auto-suspend optimization (§3 "Memory optimization").
//!
//! The paper frames the auto-suspend interval as a cost trade-off the
//! customer cannot solve by rule of thumb: a short interval drops the local
//! cache (cold reads slow the next queries and lengthen billed runtime), a
//! long one pays for idle compute. Both sides of that trade-off are directly
//! estimable from telemetry:
//!
//! * the **idle cost** of interval `a` is `Σ min(gap_i, a)` over the
//!   observed completion→arrival gaps, at the warehouse's credit rate;
//! * the **cold-restart cost** is the number of gaps exceeding `a` times the
//!   expected penalty per cold resume — extra billed runtime plus the
//!   slider-weighted latency penalty — where the cold *uplift* is measured
//!   by comparing executions of the same template at low vs. high cache
//!   warmth (both recorded in telemetry).
//!
//! The optimizer evaluates every rung of the candidate ladder and returns
//! the cost-minimizing one. This is the "analytical model calibrated by
//! learned parameters" pattern of §5 applied to a single knob.

use cdw_sim::billing::{count_f64, exact_f64};
use cdw_sim::{QueryRecord, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Learned inputs for the auto-suspend trade-off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoSuspendOptimizer {
    /// Observed idle gaps (completion of all work → next arrival), ms.
    gaps_ms: Vec<SimTime>,
    /// Fractional execution-time uplift of a cold start vs. warm run
    /// (0.5 = cold runs take 50% longer).
    cold_uplift: f64,
    /// Mean execution time, ms.
    mean_exec_ms: f64,
}

/// Warm-fraction thresholds for classifying observations.
const COLD_THRESHOLD: f64 = 0.25;
const WARM_THRESHOLD: f64 = 0.75;
/// Credit-equivalent charged per unit of *excess* latency ratio beyond the
/// slider's tolerance, per cold event.
const EXCESS_LATENCY_COST: f64 = 0.2;

impl AutoSuspendOptimizer {
    /// Fits from query history.
    pub fn train(records: &[QueryRecord]) -> Self {
        let mut ordered: Vec<&QueryRecord> = records.iter().collect();
        ordered.sort_by_key(|r| (r.arrival, r.query_id));
        let mut gaps = Vec::new();
        let mut max_end: Option<SimTime> = None;
        for r in &ordered {
            if let Some(prev) = max_end {
                if r.arrival > prev {
                    gaps.push(r.arrival - prev);
                }
            }
            max_end = Some(max_end.map_or(r.end, |m| m.max(r.end)));
        }

        // Cold uplift: same-template executions at low vs high warmth.
        // BTreeMap so the uplift average sums in template-hash order
        // (bit-reproducible across runs).
        let mut cold: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        let mut warm: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        let mut exec_sum = 0.0;
        let mut exec_n = 0usize;
        for r in records {
            let exec = exact_f64(r.execution_ms());
            if exec <= 0.0 {
                continue;
            }
            exec_sum += exec;
            exec_n += 1;
            if r.cache_warm_fraction <= COLD_THRESHOLD {
                let e = cold.entry(r.template_hash).or_insert((0.0, 0));
                e.0 += exec;
                e.1 += 1;
            } else if r.cache_warm_fraction >= WARM_THRESHOLD {
                let e = warm.entry(r.template_hash).or_insert((0.0, 0));
                e.0 += exec;
                e.1 += 1;
            }
        }
        let mut uplifts = Vec::new();
        for (tpl, (cs, cn)) in &cold {
            if let Some((ws, wn)) = warm.get(tpl) {
                let c = cs / count_f64(*cn);
                let w = ws / count_f64(*wn);
                if w > 0.0 {
                    uplifts.push((c / w - 1.0).clamp(0.0, 3.0));
                }
            }
        }
        let cold_uplift = if uplifts.is_empty() {
            0.5 // prior: cold starts run ~50% longer
        } else {
            uplifts.iter().sum::<f64>() / count_f64(uplifts.len())
        };
        Self {
            gaps_ms: gaps,
            cold_uplift,
            mean_exec_ms: if exec_n > 0 {
                exec_sum / count_f64(exec_n)
            } else {
                10_000.0
            },
        }
    }

    /// Measured cold-start execution uplift.
    pub fn cold_uplift(&self) -> f64 {
        self.cold_uplift
    }

    /// Number of observed idle gaps.
    pub fn gap_count(&self) -> usize {
        self.gaps_ms.len()
    }

    /// Expected cost (credits-equivalent) of running with auto-suspend `a`,
    /// over the training window. `allowed_latency_ratio` is the slider's
    /// tolerated p99 inflation: a cold start whose uplift stays within it
    /// costs only its extra billed runtime, not a latency penalty.
    pub fn expected_cost(
        &self,
        auto_suspend_ms: SimTime,
        credits_per_hour: f64,
        perf_lambda: f64,
        allowed_latency_ratio: f64,
    ) -> f64 {
        let rate_per_ms = credits_per_hour / 3_600_000.0;
        let extra_ms = self.mean_exec_ms * self.cold_uplift;
        let excess = ((1.0 + self.cold_uplift) / allowed_latency_ratio.max(1.0) - 1.0).max(0.0);
        let cold_event_cost = extra_ms * rate_per_ms + perf_lambda * excess * EXCESS_LATENCY_COST;
        let mut cost = 0.0;
        for &gap in &self.gaps_ms {
            let idle = exact_f64(gap.min(auto_suspend_ms));
            cost += idle * rate_per_ms;
            if gap > auto_suspend_ms {
                cost += cold_event_cost;
            }
        }
        cost
    }

    /// The rung of `ladder` minimizing [`AutoSuspendOptimizer::expected_cost`].
    /// Falls back to the largest rung when no gaps were observed (nothing to
    /// optimize; stay conservative).
    pub fn optimal_ms(
        &self,
        ladder: &[SimTime],
        credits_per_hour: f64,
        perf_lambda: f64,
        allowed_latency_ratio: f64,
    ) -> SimTime {
        assert!(!ladder.is_empty(), "empty auto-suspend ladder");
        let conservative = ladder.last().copied().unwrap_or(0);
        if self.gaps_ms.is_empty() {
            return conservative;
        }
        let mut best = conservative;
        let mut best_cost = f64::INFINITY;
        for &a in ladder {
            let cost = self.expected_cost(a, credits_per_hour, perf_lambda, allowed_latency_ratio);
            if cost < best_cost {
                best = a;
                best_cost = cost;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{WarehouseSize, HOUR_MS, MINUTE_MS};

    fn rec(id: u64, arrival: SimTime, exec: SimTime, warm: f64) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size: WarehouseSize::Large,
            cluster_count: 1,
            text_hash: id,
            template_hash: 1,
            arrival,
            start: arrival,
            end: arrival + exec,
            bytes_scanned: 0,
            cache_warm_fraction: warm,
        }
    }

    const LADDER: [SimTime; 7] = [
        30_000, 60_000, 120_000, 300_000, 600_000, 1_800_000, 3_600_000,
    ];

    #[test]
    fn sparse_arrivals_prefer_short_suspend() {
        // Hour-long gaps, modest cold uplift: idle cost dominates.
        let recs: Vec<QueryRecord> = (0..24)
            .map(|i| rec(i, i * HOUR_MS, 30_000, if i == 0 { 0.0 } else { 0.5 }))
            .collect();
        let opt = AutoSuspendOptimizer::train(&recs);
        let best = opt.optimal_ms(&LADDER, 8.0, 5.0, 1.6);
        assert!(
            best <= 60_000,
            "sparse workload should suspend fast, got {best}"
        );
    }

    #[test]
    fn tight_gaps_prefer_staying_up() {
        // Gaps of ~90 s with a large measured cold uplift: suspending at
        // 30-60 s would eat a cold start on nearly every gap.
        let mut recs = Vec::new();
        let mut t = 0;
        for i in 0..50 {
            let warm = if i % 2 == 0 { 0.1 } else { 0.9 };
            // Cold runs take 3x longer than warm: uplift 2.0.
            let exec = if warm < 0.5 { 90_000 } else { 30_000 };
            recs.push(rec(i, t, exec, warm));
            t += exec + 90_000;
        }
        let opt = AutoSuspendOptimizer::train(&recs);
        assert!(opt.cold_uplift() > 1.5, "uplift {}", opt.cold_uplift());
        let best = opt.optimal_ms(&LADDER, 1.0, 5.0, 1.6);
        assert!(
            best >= 120_000,
            "cache-hot workload should idle through gaps, got {best}"
        );
    }

    #[test]
    fn higher_rate_pushes_toward_shorter_suspend() {
        let recs: Vec<QueryRecord> = (0..24)
            .map(|i| rec(i, i * 10 * MINUTE_MS, 30_000, 0.5))
            .collect();
        let opt = AutoSuspendOptimizer::train(&recs);
        let cheap_rate = opt.optimal_ms(&LADDER, 1.0, 5.0, 1.6);
        let dear_rate = opt.optimal_ms(&LADDER, 64.0, 5.0, 1.6);
        assert!(dear_rate <= cheap_rate);
    }

    #[test]
    fn no_gaps_stays_conservative() {
        let opt = AutoSuspendOptimizer::train(&[]);
        assert_eq!(
            opt.optimal_ms(&LADDER, 8.0, 5.0, 1.6),
            *LADDER.last().unwrap()
        );
    }

    #[test]
    fn expected_cost_is_monotone_in_idle_for_long_gaps() {
        // With hour-long gaps and negligible cold cost, expected cost grows
        // with the auto-suspend interval.
        let recs: Vec<QueryRecord> = (0..10).map(|i| rec(i, i * HOUR_MS, 1_000, 0.9)).collect();
        let opt = AutoSuspendOptimizer::train(&recs);
        let short = opt.expected_cost(30_000, 8.0, 0.0, 1.6);
        let long = opt.expected_cost(1_800_000, 8.0, 0.0, 1.6);
        assert!(long > short);
    }

    #[test]
    fn cold_uplift_is_bit_identical_across_input_orderings() {
        // The uplift average sums per-template ratios; map-order leakage
        // would make the result depend on record ordering. Pin bit-identity.
        let mut recs = Vec::new();
        let mut t = 0;
        for i in 0..40 {
            let tpl = i % 4;
            let warm = if i % 2 == 0 { 0.1 } else { 0.9 };
            let exec = if warm < 0.5 {
                60_000 + tpl * 7_000
            } else {
                20_000 + tpl * 3_000
            };
            let mut r = rec(i, t, exec, warm);
            r.template_hash = tpl;
            recs.push(r);
            t += exec + 45_000;
        }
        let forward = AutoSuspendOptimizer::train(&recs);
        let mut reversed = recs.clone();
        reversed.reverse();
        let backward = AutoSuspendOptimizer::train(&reversed);
        assert_eq!(
            forward.cold_uplift().to_bits(),
            backward.cold_uplift().to_bits()
        );
    }

    #[test]
    fn uplift_prior_used_without_warm_cold_pairs() {
        let recs: Vec<QueryRecord> = (0..5).map(|i| rec(i, i * HOUR_MS, 1_000, 0.5)).collect();
        let opt = AutoSuspendOptimizer::train(&recs);
        assert_eq!(opt.cold_uplift(), 0.5);
    }
}
