//! Savings estimation (§5.1): without-Keebo estimate minus with-Keebo
//! actuals.
//!
//! "In most cases the with-Keebo cost need not be estimated as it can be
//! directly obtained from the CDW's billing data for the period that KWO was
//! actively optimizing ... The difference between the estimated
//! without-Keebo cost and the actual with-Keebo cost is KWO's cost saving."

use crate::replay::{ReplayConfig, ReplayOutcome, WarehouseCostModel};
use cdw_sim::{HourlyCredits, QueryRecord, SimTime};
use serde::{Deserialize, Serialize};

/// The savings view presented to the customer (and used for value-based
/// pricing and the DRL reward).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavingsReport {
    /// Start of the evaluated window.
    pub window_start: SimTime,
    /// End of the evaluated window.
    pub window_end: SimTime,
    /// Estimated credits the customer would have paid without Keebo.
    pub estimated_without_keebo: f64,
    /// Actual credits billed with Keebo active.
    pub actual_with_keebo: f64,
    /// `estimated_without_keebo - actual_with_keebo` (may be negative if an
    /// action backfired; the monitoring loop uses that signal to revert).
    pub estimated_savings: f64,
    /// Savings as a fraction of the without-Keebo estimate, in [-inf, 1].
    pub savings_fraction: f64,
    /// Replay diagnostics.
    pub replay: ReplayOutcome,
}

/// Estimates savings for a window: replays the observed queries under the
/// original configuration and subtracts the actual billed credits (from
/// billing history).
pub fn estimate_savings(
    model: &WarehouseCostModel,
    records: &[QueryRecord],
    actual_billing: &HourlyCredits,
    cfg: &ReplayConfig,
) -> SavingsReport {
    let replay = model.replay(records, cfg);
    let from_hour = cfg.window_start / cdw_sim::HOUR_MS;
    let to_hour = cfg.window_end.div_ceil(cdw_sim::HOUR_MS);
    let actual = actual_billing.range_total(from_hour, to_hour);
    let without = replay.estimated_credits;
    SavingsReport {
        window_start: cfg.window_start,
        window_end: cfg.window_end,
        estimated_without_keebo: without,
        actual_with_keebo: actual,
        estimated_savings: without - actual,
        savings_fraction: if without > 0.0 {
            (without - actual) / without
        } else {
            0.0
        },
        replay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{WarehouseConfig, WarehouseSize, HOUR_MS, MINUTE_MS};

    fn rec(id: u64, arrival: SimTime, exec_ms: SimTime, size: WarehouseSize) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size,
            cluster_count: 1,
            text_hash: id,
            template_hash: 1,
            arrival,
            start: arrival,
            end: arrival + exec_ms,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    fn replay_cfg() -> ReplayConfig {
        ReplayConfig {
            original: WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600),
            window_start: 0,
            window_end: 24 * HOUR_MS,
        }
    }

    #[test]
    fn savings_positive_when_actual_is_cheaper() {
        let model = WarehouseCostModel::default();
        // Observed on a downsized X-Small warehouse with tight auto-suspend.
        let records: Vec<QueryRecord> = (0..5)
            .map(|i| rec(i, i * 2 * HOUR_MS, 10 * MINUTE_MS, WarehouseSize::XSmall))
            .collect();
        let mut actual = HourlyCredits::new();
        // Keebo world billed ~1 credit total.
        actual.add(0, 1.0);
        let report = estimate_savings(&model, &records, &actual, &replay_cfg());
        assert!(report.estimated_without_keebo > 1.0);
        assert!(report.estimated_savings > 0.0);
        assert!(
            (report.savings_fraction - report.estimated_savings / report.estimated_without_keebo)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn savings_negative_when_optimization_backfired() {
        let model = WarehouseCostModel::default();
        let records = vec![rec(1, 0, MINUTE_MS, WarehouseSize::XSmall)];
        let mut actual = HourlyCredits::new();
        actual.add(0, 100.0); // Keebo world somehow burned 100 credits
        let report = estimate_savings(&model, &records, &actual, &replay_cfg());
        assert!(report.estimated_savings < 0.0);
    }

    #[test]
    fn actual_outside_window_is_ignored() {
        let model = WarehouseCostModel::default();
        let records = vec![rec(1, 0, MINUTE_MS, WarehouseSize::XSmall)];
        let mut actual = HourlyCredits::new();
        actual.add(48 * HOUR_MS, 100.0); // next-day billing, out of window
        let report = estimate_savings(&model, &records, &actual, &replay_cfg());
        assert_eq!(report.actual_with_keebo, 0.0);
    }

    #[test]
    fn empty_window_reports_zero_fraction() {
        let model = WarehouseCostModel::default();
        let actual = HourlyCredits::new();
        let report = estimate_savings(&model, &[], &actual, &replay_cfg());
        assert_eq!(report.estimated_savings, 0.0);
        assert_eq!(report.savings_fraction, 0.0);
    }
}
