//! Query-gap modeling (§5.2, "Impact on query arrival times").
//!
//! When the replay changes query latencies, naively keeping observed arrival
//! times would distort the workload: dependent queries (ETL steps, dashboard
//! cascades) really arrive *relative to their predecessor's completion*, not
//! at absolute wall-clock times. The paper: "queries either arrive
//! independently at a given arrival rate or they have dependencies that
//! cause them to arrive at successive or scheduled time periods ... the gaps
//! between should not change with warehouse optimization".
//!
//! The model learns, per warehouse, the distribution of *completion-to-
//! arrival* gaps and classifies each query as dependent (arrives within the
//! dependency threshold of the previous completion) or independent. During
//! replay, dependent queries keep their observed gap but chain off the
//! *replayed* predecessor completion; independent queries keep their
//! absolute arrival. Gaps are also clamped at the auto-suspend interval,
//! since beyond it the warehouse would have suspended and costs stop
//! accruing regardless.

use cdw_sim::billing::count_f64;
use cdw_sim::{QueryRecord, SimTime};
use serde::{Deserialize, Serialize};

/// Learned gap statistics for one warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapModel {
    /// Gap below which a query is considered dependent on its predecessor.
    pub dependency_threshold_ms: SimTime,
    /// Median completion-to-arrival gap among dependent queries.
    pub median_dependent_gap_ms: SimTime,
    /// Fraction of queries classified as dependent.
    pub dependent_fraction: f64,
}

impl Default for GapModel {
    fn default() -> Self {
        Self {
            dependency_threshold_ms: 30_000,
            median_dependent_gap_ms: 5_000,
            dependent_fraction: 0.0,
        }
    }
}

impl GapModel {
    /// Trains on arrival-ordered query history. The dependency threshold is
    /// fixed (30 s — well under any auto-suspend interval); the statistics
    /// describe how tightly the workload chains.
    pub fn train(records: &[QueryRecord]) -> Self {
        let mut ordered: Vec<&QueryRecord> = records.iter().collect();
        ordered.sort_by_key(|r| (r.arrival, r.query_id));
        let threshold = Self::default().dependency_threshold_ms;

        let mut dependent_gaps: Vec<SimTime> = Vec::new();
        let mut total = 0usize;
        let mut max_end: Option<SimTime> = None;
        for r in &ordered {
            if let Some(prev_end) = max_end {
                total += 1;
                if r.arrival >= prev_end && r.arrival - prev_end <= threshold {
                    dependent_gaps.push(r.arrival - prev_end);
                }
            }
            max_end = Some(max_end.map_or(r.end, |m| m.max(r.end)));
        }
        dependent_gaps.sort_unstable();
        let median = dependent_gaps
            .get(dependent_gaps.len() / 2)
            .copied()
            .unwrap_or(Self::default().median_dependent_gap_ms);
        Self {
            dependency_threshold_ms: threshold,
            median_dependent_gap_ms: median,
            dependent_fraction: if total > 0 {
                count_f64(dependent_gaps.len()) / count_f64(total)
            } else {
                0.0
            },
        }
    }

    /// Classifies one query given the previous maximum completion time (in
    /// the *observed* timeline): returns `Some(gap)` when dependent.
    pub fn dependent_gap(&self, arrival: SimTime, prev_end: SimTime) -> Option<SimTime> {
        if arrival >= prev_end && arrival - prev_end <= self.dependency_threshold_ms {
            Some(arrival - prev_end)
        } else {
            None
        }
    }

    /// Clamps an idle gap at the auto-suspend interval: the warehouse stops
    /// billing after `auto_suspend_ms` of idleness, so longer gaps cost the
    /// same (§5.2: "query gaps cannot be longer than the auto-suspend
    /// interval since the warehouse would have shut down").
    pub fn clamp_billable_gap(gap_ms: SimTime, auto_suspend_ms: SimTime) -> SimTime {
        if auto_suspend_ms == 0 {
            gap_ms // auto-suspend disabled: the gap bills in full
        } else {
            gap_ms.min(auto_suspend_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::WarehouseSize;

    fn rec(id: u64, arrival: SimTime, end: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size: WarehouseSize::Small,
            cluster_count: 1,
            text_hash: id,
            template_hash: 0,
            arrival,
            start: arrival,
            end,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    #[test]
    fn chained_etl_is_classified_dependent() {
        // Each query arrives 2 s after the previous completes.
        let mut recs = Vec::new();
        let mut t = 0;
        for i in 0..10 {
            let end = t + 60_000;
            recs.push(rec(i, t, end));
            t = end + 2_000;
        }
        let m = GapModel::train(&recs);
        assert!(
            m.dependent_fraction > 0.99,
            "fraction {}",
            m.dependent_fraction
        );
        assert_eq!(m.median_dependent_gap_ms, 2_000);
    }

    #[test]
    fn sparse_adhoc_is_classified_independent() {
        // Queries an hour apart.
        let recs: Vec<QueryRecord> = (0..10)
            .map(|i| rec(i, i * 3_600_000, i * 3_600_000 + 30_000))
            .collect();
        let m = GapModel::train(&recs);
        assert_eq!(m.dependent_fraction, 0.0);
    }

    #[test]
    fn mixed_workload_gets_intermediate_fraction() {
        let mut recs = Vec::new();
        // 5 chained...
        let mut t = 0;
        for i in 0..5 {
            let end = t + 10_000;
            recs.push(rec(i, t, end));
            t = end + 1_000;
        }
        // ...then 5 sparse.
        for i in 5..10 {
            recs.push(rec(i, i * 3_600_000, i * 3_600_000 + 10_000));
        }
        let m = GapModel::train(&recs);
        assert!(m.dependent_fraction > 0.3 && m.dependent_fraction < 0.7);
    }

    #[test]
    fn dependent_gap_detection_respects_threshold() {
        let m = GapModel::default();
        assert_eq!(m.dependent_gap(10_000, 8_000), Some(2_000));
        assert_eq!(m.dependent_gap(50_000, 8_000), None, "gap too large");
        assert_eq!(m.dependent_gap(5_000, 8_000), None, "overlapping arrival");
    }

    #[test]
    fn billable_gap_clamps_at_auto_suspend() {
        assert_eq!(GapModel::clamp_billable_gap(5_000, 60_000), 5_000);
        assert_eq!(GapModel::clamp_billable_gap(600_000, 60_000), 60_000);
        assert_eq!(
            GapModel::clamp_billable_gap(600_000, 0),
            600_000,
            "disabled"
        );
    }

    #[test]
    fn empty_history_trains_defaults() {
        let m = GapModel::train(&[]);
        assert_eq!(m.dependent_fraction, 0.0);
        assert_eq!(
            m.median_dependent_gap_ms,
            GapModel::default().median_dependent_gap_ms
        );
    }

    #[test]
    fn overlapping_concurrent_queries_are_not_dependent() {
        // Two queries overlapping in time: the second arrives before the
        // first ends, so it cannot be waiting on it.
        let recs = vec![rec(1, 0, 100_000), rec(2, 50_000, 150_000)];
        let m = GapModel::train(&recs);
        assert_eq!(m.dependent_fraction, 0.0);
    }
}
