//! Learned latency scaling across warehouse sizes (§5.2, "Impact on query
//! latencies").
//!
//! "To estimate the impact of warehouse size on query latencies, we train a
//! regression model to scale query latencies across warehouse sizes. ...
//! since KWO changes warehouse sizes dynamically, it is likely to find
//! identical or at least similar queries run on different warehouse sizes
//! over time. In situations where we do not find similar queries in the
//! past, we use the average impact on query latencies observed on that
//! warehouse as a first-order approximation."
//!
//! Model: per template, OLS of `log2(execution_ms)` against the size index.
//! The fitted slope `b` means one size step multiplies latency by `2^b`
//! (b ≈ −1 for perfectly parallel queries, 0 for serial ones). Templates
//! without observations at two distinct sizes fall back to a globally pooled
//! slope.

use cdw_sim::billing::{count_f64, exact_f64};
use cdw_sim::{QueryRecord, WarehouseSize};
use nn::ols_fit;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Slope clamp: latency should not *improve* more than perfectly linearly
/// with much headroom, nor degrade steeply with size.
const SLOPE_MIN: f64 = -1.5;
const SLOPE_MAX: f64 = 0.25;

/// Learned per-template latency scaling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyScaler {
    /// log2-latency-per-size-step slope per template.
    per_template: BTreeMap<u64, f64>,
    /// Pooled slope used when a template has no model of its own.
    global_slope: f64,
    /// Number of templates with their own fit (diagnostics).
    fitted_templates: usize,
}

impl Default for LatencyScaler {
    /// An untrained scaler assuming the "capacity doubles per step" default:
    /// latency halves with each size increment (slope −1).
    fn default() -> Self {
        Self {
            per_template: BTreeMap::new(),
            global_slope: -1.0,
            fitted_templates: 0,
        }
    }
}

impl LatencyScaler {
    /// Trains from query history. Records with zero execution time are
    /// skipped. Works with any mix of sizes; templates observed at a single
    /// size contribute nothing (their slope is unidentifiable).
    pub fn train(records: &[QueryRecord]) -> Self {
        let mut by_template: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
        for r in records {
            let exec = r.execution_ms();
            if exec == 0 {
                continue;
            }
            by_template
                .entry(r.template_hash)
                .or_default()
                .push((count_f64(r.size.index()), exact_f64(exec).log2()));
        }

        // Within-template observation order still affects float summation in
        // the per-template and pooled fits (addition is not associative), and
        // callers do not control telemetry arrival order. Canonicalize by
        // sorting each observation list; all values are finite and
        // non-negative, so the bit pattern is a valid total order.
        for obs in by_template.values_mut() {
            obs.sort_by_key(|(s, y)| (s.to_bits(), y.to_bits()));
        }

        let mut per_template = BTreeMap::new();
        // Pooled, template-demeaned data for the global slope: subtracting
        // each template's mean removes the per-template intercept so
        // heavier templates do not bias the slope. Rows are appended in
        // template-hash order (BTreeMap), so the float summations inside the
        // pooled fit are bit-reproducible across runs.
        let mut pooled_x = Vec::new();
        let mut pooled_y = Vec::new();

        for (&tpl, obs) in &by_template {
            // Distinct sizes are compared by bit pattern: the indices are small
            // non-negative integers, so to_bits is injective on them.
            let distinct_sizes: std::collections::BTreeSet<u64> =
                obs.iter().map(|(s, _)| s.to_bits()).collect();
            if distinct_sizes.len() < 2 {
                continue;
            }
            let xs: Vec<Vec<f64>> = obs.iter().map(|(s, _)| vec![*s]).collect();
            let ys: Vec<f64> = obs.iter().map(|(_, y)| *y).collect();
            if let Some(model) = ols_fit(&xs, &ys) {
                per_template.insert(tpl, model.weights[0].clamp(SLOPE_MIN, SLOPE_MAX));
            }
            let mean_x: f64 = obs.iter().map(|(s, _)| s).sum::<f64>() / count_f64(obs.len());
            let mean_y: f64 = obs.iter().map(|(_, y)| y).sum::<f64>() / count_f64(obs.len());
            for (s, y) in obs {
                pooled_x.push(vec![s - mean_x]);
                pooled_y.push(y - mean_y);
            }
        }

        let global_slope = if pooled_x.len() >= 2 {
            ols_fit(&pooled_x, &pooled_y)
                .map(|m| m.weights[0].clamp(SLOPE_MIN, SLOPE_MAX))
                .unwrap_or(-1.0)
        } else {
            // No cross-size evidence at all: assume the widely held
            // "capacity doubles per step" default.
            -1.0
        };

        let fitted_templates = per_template.len();
        Self {
            per_template,
            global_slope,
            fitted_templates,
        }
    }

    /// The slope used for `template` (its own fit or the global fallback).
    pub fn slope_for(&self, template: u64) -> f64 {
        self.per_template
            .get(&template)
            .copied()
            .unwrap_or(self.global_slope)
    }

    /// Pooled fallback slope.
    pub fn global_slope(&self) -> f64 {
        self.global_slope
    }

    /// Templates with an individually fitted slope.
    pub fn fitted_templates(&self) -> usize {
        self.fitted_templates
    }

    /// Scales an observed execution time from one size to another:
    /// `exec_to = exec_from * 2^(slope * (to - from))`.
    pub fn scale_execution_ms(
        &self,
        template: u64,
        exec_ms: f64,
        from: WarehouseSize,
        to: WarehouseSize,
    ) -> f64 {
        if from == to {
            return exec_ms;
        }
        let slope = self.slope_for(template);
        let delta = count_f64(to.index()) - count_f64(from.index());
        (exec_ms * (slope * delta).exp2()).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::SimTime;

    fn rec(template: u64, size: WarehouseSize, exec_ms: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: 0,
            warehouse: "WH".into(),
            size,
            cluster_count: 1,
            text_hash: 0,
            template_hash: template,
            arrival: 0,
            start: 0,
            end: exec_ms,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    /// Builds records where template `t`'s latency halves per size step.
    fn linear_scaling_records() -> Vec<QueryRecord> {
        let mut out = Vec::new();
        for (size, exec) in [
            (WarehouseSize::XSmall, 16_000),
            (WarehouseSize::Small, 8_000),
            (WarehouseSize::Medium, 4_000),
        ] {
            for _ in 0..3 {
                out.push(rec(1, size, exec));
            }
        }
        out
    }

    #[test]
    fn learns_halving_slope_from_clean_data() {
        let scaler = LatencyScaler::train(&linear_scaling_records());
        assert!(
            (scaler.slope_for(1) + 1.0).abs() < 0.01,
            "slope {}",
            scaler.slope_for(1)
        );
        assert_eq!(scaler.fitted_templates(), 1);
    }

    #[test]
    fn scaling_round_trips() {
        let scaler = LatencyScaler::train(&linear_scaling_records());
        let up =
            scaler.scale_execution_ms(1, 16_000.0, WarehouseSize::XSmall, WarehouseSize::Medium);
        assert!((up - 4_000.0).abs() < 50.0, "got {up}");
        let back = scaler.scale_execution_ms(1, up, WarehouseSize::Medium, WarehouseSize::XSmall);
        assert!((back - 16_000.0).abs() < 100.0, "got {back}");
    }

    #[test]
    fn same_size_is_identity() {
        let scaler = LatencyScaler::default();
        assert_eq!(
            scaler.scale_execution_ms(9, 1234.0, WarehouseSize::Large, WarehouseSize::Large),
            1234.0
        );
    }

    #[test]
    fn unseen_template_uses_global_slope() {
        let scaler = LatencyScaler::train(&linear_scaling_records());
        // Template 99 was never observed; global slope comes from template 1.
        assert!((scaler.slope_for(99) - scaler.global_slope()).abs() < 1e-12);
        assert!((scaler.global_slope() + 1.0).abs() < 0.01);
    }

    #[test]
    fn single_size_template_falls_back() {
        let recs: Vec<QueryRecord> = (0..5)
            .map(|_| rec(7, WarehouseSize::Small, 5_000))
            .collect();
        let scaler = LatencyScaler::train(&recs);
        assert_eq!(scaler.fitted_templates(), 0);
        // Default assumption: halving per step.
        assert_eq!(scaler.slope_for(7), -1.0);
    }

    #[test]
    fn serial_template_learns_flat_slope() {
        let mut recs = Vec::new();
        for size in [
            WarehouseSize::XSmall,
            WarehouseSize::Medium,
            WarehouseSize::XLarge,
        ] {
            for _ in 0..2 {
                recs.push(rec(3, size, 10_000));
            }
        }
        let scaler = LatencyScaler::train(&recs);
        assert!(
            scaler.slope_for(3).abs() < 0.01,
            "flat slope, got {}",
            scaler.slope_for(3)
        );
        // Scaling changes nothing for a serial query.
        let scaled =
            scaler.scale_execution_ms(3, 10_000.0, WarehouseSize::XSmall, WarehouseSize::XLarge);
        assert!((scaled - 10_000.0).abs() < 100.0);
    }

    #[test]
    fn slopes_are_clamped() {
        // Pathological data: latency *exploding* with size.
        let recs = vec![
            rec(5, WarehouseSize::XSmall, 1_000),
            rec(5, WarehouseSize::Small, 100_000),
        ];
        let scaler = LatencyScaler::train(&recs);
        assert!(scaler.slope_for(5) <= SLOPE_MAX);
    }

    #[test]
    fn mixed_templates_pool_into_global_slope() {
        let mut recs = linear_scaling_records();
        // A second, serial template.
        for size in [WarehouseSize::XSmall, WarehouseSize::Medium] {
            recs.push(rec(2, size, 10_000));
        }
        let scaler = LatencyScaler::train(&recs);
        let g = scaler.global_slope();
        assert!(g < 0.0 && g > -1.0, "pooled slope between the two: {g}");
    }

    #[test]
    fn global_slope_is_bit_identical_across_input_orderings() {
        // The pooled OLS sums floats per template; if iteration order ever
        // leaked from the map again, reordering the records would flip the
        // low bits of the slope. Pin bit-identity, not approximate equality.
        let mut recs = linear_scaling_records();
        for size in [WarehouseSize::XSmall, WarehouseSize::Medium] {
            recs.push(rec(2, size, 10_000));
            recs.push(rec(9, size, 3_000));
        }
        let forward = LatencyScaler::train(&recs);
        let mut reversed = recs.clone();
        reversed.reverse();
        let backward = LatencyScaler::train(&reversed);
        // Deterministic interleave: odd indices first, then even.
        let interleaved: Vec<QueryRecord> = recs
            .iter()
            .skip(1)
            .step_by(2)
            .chain(recs.iter().step_by(2))
            .cloned()
            .collect();
        let shuffled = LatencyScaler::train(&interleaved);
        assert_eq!(
            forward.global_slope().to_bits(),
            backward.global_slope().to_bits()
        );
        assert_eq!(
            forward.global_slope().to_bits(),
            shuffled.global_slope().to_bits()
        );
        for tpl in [1, 2, 9] {
            assert_eq!(
                forward.slope_for(tpl).to_bits(),
                backward.slope_for(tpl).to_bits(),
                "template {tpl}"
            );
        }
    }

    #[test]
    fn zero_execution_records_are_ignored() {
        let recs = vec![rec(1, WarehouseSize::XSmall, 0)];
        let scaler = LatencyScaler::train(&recs);
        assert_eq!(scaler.fitted_templates(), 0);
    }
}
