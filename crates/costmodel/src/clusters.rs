//! Cluster-count prediction (§5.2, "Impact on warehouse parallelism").
//!
//! "We train [a] cluster-count predictor using the past performance
//! statistics and the original max cluster count. To avoid dealing with
//! per-second predictions, we batch the past query execution into
//! mini-windows and then predict the average cluster count for each
//! mini-window."
//!
//! Implementation: for every mini-window of history we extract demand
//! features (mean concurrency, arrival rate) and fit OLS against the
//! observed mean cluster count, with the max cluster count as an input so
//! the model generalizes across configurations. An analytical estimate —
//! ceil(demand / per-cluster concurrency), clamped to [1, max] — serves as
//! both a feature and the fallback when history is too thin, and the learned
//! prediction is always clamped into the feasible [1, max] range.

use cdw_sim::billing::{exact_f64, span_ms};
use cdw_sim::{QueryRecord, SimTime, MINUTE_MS};
use nn::LinearModel;
use serde::{Deserialize, Serialize};
use telemetry::WindowFeatures;

/// Mini-window length used for training and prediction.
pub const MINI_WINDOW_MS: SimTime = 5 * MINUTE_MS;

/// Predicts the average concurrent cluster count a configuration would run
/// for a given demand level.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterPredictor {
    model: Option<LinearModel>,
    /// Windows used in training (diagnostics).
    trained_windows: usize,
}

impl ClusterPredictor {
    /// Analytical floor: clusters needed to serve `mean_concurrency`
    /// queries with `max_concurrency` slots each, clamped to [1, max].
    pub fn analytic_estimate(
        mean_concurrency: f64,
        max_concurrency: u32,
        max_clusters: u32,
    ) -> f64 {
        let needed = (mean_concurrency / exact_f64(u64::from(max_concurrency.max(1)))).ceil();
        needed.clamp(1.0, exact_f64(u64::from(max_clusters.max(1))))
    }

    fn features(
        mean_concurrency: f64,
        arrival_rate_per_hour: f64,
        max_concurrency: u32,
        max_clusters: u32,
    ) -> Vec<f64> {
        vec![
            mean_concurrency,
            arrival_rate_per_hour / 100.0,
            exact_f64(u64::from(max_clusters)),
            Self::analytic_estimate(mean_concurrency, max_concurrency, max_clusters),
        ]
    }

    /// Trains on query history gathered while `max_clusters`/`max_concurrency`
    /// were in effect. Windows with no completed queries are skipped (their
    /// observed cluster count is unknown).
    ///
    /// The demand feature is *span-normalized* concurrency — busy time
    /// divided by the active span within the window, not by the window
    /// length — matching exactly how the replay engine queries the model
    /// (a one-minute burst in a five-minute window is five concurrent
    /// queries, not one).
    pub fn train(
        records: &[QueryRecord],
        start: SimTime,
        end: SimTime,
        max_concurrency: u32,
        max_clusters: u32,
    ) -> Self {
        let windows = WindowFeatures::series(records, start, end, MINI_WINDOW_MS);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for w in &windows {
            if w.mean_cluster_count <= 0.0 {
                continue;
            }
            // Active span within this window.
            let w_start = w.window_start;
            let w_end = w.window_start + w.window_ms;
            let mut span_lo = SimTime::MAX;
            let mut span_hi = 0;
            let mut busy_ms = 0.0;
            for r in records {
                if r.start < w_end && r.end > w_start {
                    let lo = r.start.max(w_start);
                    let hi = r.end.min(w_end);
                    busy_ms += exact_f64(span_ms(lo, hi));
                    span_lo = span_lo.min(lo);
                    span_hi = span_hi.max(hi);
                }
            }
            let span = if span_hi > span_lo {
                exact_f64(span_hi - span_lo)
            } else {
                continue;
            };
            xs.push(Self::features(
                busy_ms / span,
                w.arrival_rate_per_hour,
                max_concurrency,
                max_clusters,
            ));
            ys.push(w.mean_cluster_count);
        }
        let model = if xs.len() >= 8 {
            // Ridge with a tiny penalty guards against collinear features
            // (the analytic estimate often correlates with concurrency).
            nn::ridge_fit(&xs, &ys, 1e-3)
        } else {
            None
        };
        Self {
            model,
            trained_windows: xs.len(),
        }
    }

    /// Windows that contributed to the fit.
    pub fn trained_windows(&self) -> usize {
        self.trained_windows
    }

    /// True when a learned model (vs. the analytic fallback) is active.
    pub fn is_learned(&self) -> bool {
        self.model.is_some()
    }

    /// Predicts the mean cluster count for a window with the given demand,
    /// under a configuration with `max_concurrency` slots per cluster and up
    /// to `max_clusters` clusters.
    pub fn predict(
        &self,
        mean_concurrency: f64,
        arrival_rate_per_hour: f64,
        max_concurrency: u32,
        max_clusters: u32,
    ) -> f64 {
        let analytic = Self::analytic_estimate(mean_concurrency, max_concurrency, max_clusters);
        let raw = match &self.model {
            Some(m) => m.predict(&Self::features(
                mean_concurrency,
                arrival_rate_per_hour,
                max_concurrency,
                max_clusters,
            )),
            None => analytic,
        };
        raw.clamp(1.0, exact_f64(u64::from(max_clusters.max(1))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::WarehouseSize;

    fn rec(id: u64, arrival: SimTime, end: SimTime, clusters: u32) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size: WarehouseSize::Small,
            cluster_count: clusters,
            text_hash: id,
            template_hash: 0,
            arrival,
            start: arrival,
            end,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    #[test]
    fn analytic_estimate_is_clamped_and_monotone() {
        assert_eq!(ClusterPredictor::analytic_estimate(0.0, 8, 4), 1.0);
        assert_eq!(ClusterPredictor::analytic_estimate(9.0, 8, 4), 2.0);
        assert_eq!(ClusterPredictor::analytic_estimate(100.0, 8, 4), 4.0);
        // Zero concurrency is guarded to one slot per cluster.
        assert_eq!(ClusterPredictor::analytic_estimate(5.0, 0, 4), 4.0);
    }

    #[test]
    fn untrained_predictor_uses_analytic_fallback() {
        let p = ClusterPredictor::default();
        assert!(!p.is_learned());
        assert_eq!(p.predict(16.0, 10.0, 8, 4), 2.0);
    }

    #[test]
    fn prediction_never_leaves_feasible_range() {
        let p = ClusterPredictor::default();
        for demand in [0.0, 1.0, 50.0, 1000.0] {
            let c = p.predict(demand, 0.0, 8, 3);
            assert!((1.0..=3.0).contains(&c), "demand {demand} -> {c}");
        }
    }

    #[test]
    fn training_learns_demand_to_cluster_relationship() {
        // Synthesize history: windows alternate between 1 query (1 cluster)
        // and 20 concurrent queries (3 clusters).
        let mut recs = Vec::new();
        let mut id = 0;
        for w in 0..40u64 {
            let base = w * MINI_WINDOW_MS;
            // End strictly inside the window so completions (and thus the
            // observed cluster-count labels) stay aligned with the demand.
            let end = base + MINI_WINDOW_MS - 1_000;
            if w % 2 == 0 {
                recs.push(rec(id, base, end, 1));
                id += 1;
            } else {
                for q in 0..20 {
                    recs.push(rec(id, base + q * 100, end, 3));
                    id += 1;
                }
            }
        }
        let p = ClusterPredictor::train(&recs, 0, 40 * MINI_WINDOW_MS, 8, 3);
        assert!(p.is_learned(), "enough windows to learn");
        let low = p.predict(1.0, 12.0, 8, 3);
        let high = p.predict(20.0, 240.0, 8, 3);
        assert!(low < 1.7, "low demand -> ~1 cluster, got {low}");
        assert!(high > 2.3, "high demand -> ~3 clusters, got {high}");
    }

    #[test]
    fn thin_history_stays_analytic() {
        let recs = vec![rec(0, 0, 10_000, 1)];
        let p = ClusterPredictor::train(&recs, 0, MINI_WINDOW_MS, 8, 4);
        assert!(!p.is_learned());
        assert!(p.trained_windows() < 8);
    }
}
