//! Crash-drill matrix across the store backend family.
//!
//! The contract pinned here extends `tests/recovery.rs` from one backend to
//! the whole family (see `keebo::store`): for **every** backend —
//! [`MemStore`], [`FileStore`], [`RemoteKvStore`] under seeded fault plans —
//! a control plane killed at any seeded tick boundary recovers
//! *bit-identically*: the recovered run's decision log and billing match an
//! uninterrupted run of the same scenario exactly. The matrix covers ≥100
//! seeded (backend, scenario, seed, crash tick, policy) cells; half the
//! cells run a tight size-triggered [`SnapshotPolicy`] instead of the
//! default 48-tick cadence, so compaction itself is proven invisible.
//!
//! Also pinned here:
//! * negative paths: each injected `RemoteKvStore` fault increments its
//!   matching fail-open `keebo.store.*` counter while the optimization
//!   digest stays identical to a store-less run;
//! * compaction bounds replay: a 10k-tick run under a size+age policy keeps
//!   the WAL (and therefore recovery replay) bounded and retains exactly
//!   the configured number of snapshot generations;
//! * snapshot-format versioning end to end: a v1 reader restores a v0
//!   (bare-JSON, pre-envelope) snapshot bit-identically.

// Offline builds patch proptest with a no-op stub (.devstubs/), under which
// the imports below count as unused; real proptest (CI) uses all of them.
#![allow(unused_imports, dead_code)]

use std::collections::HashMap;
use std::path::PathBuf;

use cdw_sim::{
    Account, Simulator, WarehouseConfig, WarehouseId, WarehouseSize, DAY_MS, HOUR_MS, MINUTE_MS,
};
use keebo::drill::{
    build_sim, fast_setup, fingerprint, run_cell, run_uninterrupted, DrillBackend, DrillCell,
    Fingerprint, END_MS, OBSERVE_MS, SCENARIOS, TICK_MS, WAREHOUSE,
};
use keebo::persist::{decode_snapshot, encode_snapshot_v0, encode_snapshot_with_extra_fields};
use keebo::{
    generate_trace, KwoSetup, MemStore, Orchestrator, RemoteKvStore, SnapshotPolicy, StateStore,
    StoreFaultPlan,
};
use proptest::prelude::*;
use workload::EtlWorkload;

/// A tight compaction policy exercised by half the matrix cells: snapshots
/// every 7 ticks or 12 WAL records (whichever first), keep 2 generations.
fn tight_policy() -> SnapshotPolicy {
    SnapshotPolicy {
        interval_ticks: 7,
        max_wal_bytes: 0,
        max_wal_records: 12,
        retain_snapshots: 2,
    }
}

/// Fault plans the remote cells run under. Append rates stay well under the
/// orchestrator's 4-attempt retry budget so no plan ever detaches the store
/// (a detach would — correctly — fail the bit-identity assertion).
fn remote_plans() -> [StoreFaultPlan; 4] {
    [
        // Healthy remote, latency only.
        StoreFaultPlan {
            seed: 0xA0,
            latency_us: 400,
            ..StoreFaultPlan::none()
        },
        // Flaky appends (4%).
        StoreFaultPlan {
            seed: 0xA1,
            append_error_ppm: 40_000,
            latency_us: 250,
            ..StoreFaultPlan::none()
        },
        // Failing snapshot writes (30%) — compaction limps, WAL covers.
        StoreFaultPlan {
            seed: 0xB2,
            snapshot_error_ppm: 300_000,
            latency_us: 900,
            ..StoreFaultPlan::none()
        },
        // Everything at once: flaky appends, snapshots, and load timeouts.
        StoreFaultPlan {
            seed: 0xC3,
            append_error_ppm: 30_000,
            snapshot_error_ppm: 200_000,
            read_timeout_ppm: 80_000,
            latency_us: 1500,
        },
    ]
}

/// Applies the matrix's policy split: odd crash seeds run the tight
/// size-triggered policy, even ones the default cadence.
fn with_policy_split(mut cell: DrillCell) -> DrillCell {
    if cell.crash_seed % 2 == 1 {
        cell.policy = Some(tight_policy());
    }
    cell
}

fn mem_cells() -> Vec<DrillCell> {
    let mut cells = Vec::new();
    for scenario in 0..SCENARIOS {
        for seed in [11u64, 12] {
            for k in 0..4u64 {
                let crash_seed = scenario as u64 * 1_000 + seed * 10 + k;
                cells.push(with_policy_split(DrillCell::clean(
                    scenario,
                    seed,
                    crash_seed,
                    DrillBackend::Mem,
                )));
            }
        }
    }
    cells
}

fn file_cells() -> Vec<DrillCell> {
    let mut cells = Vec::new();
    for scenario in [1usize, 4] {
        for seed in [21u64, 22] {
            for k in 0..4u64 {
                let crash_seed = scenario as u64 * 1_000 + seed * 10 + k;
                let dir = scratch_dir(&format!("cell-{scenario}-{seed}-{k}"));
                cells.push(with_policy_split(DrillCell::clean(
                    scenario,
                    seed,
                    crash_seed,
                    DrillBackend::File(dir),
                )));
            }
        }
    }
    cells
}

fn remote_cells() -> Vec<DrillCell> {
    let mut cells = Vec::new();
    for (p, plan) in remote_plans().into_iter().enumerate() {
        for scenario in [0usize, 2, 3] {
            for k in 0..4u64 {
                let crash_seed = p as u64 * 10_000 + scenario as u64 * 100 + k;
                cells.push(with_policy_split(DrillCell::clean(
                    scenario,
                    31,
                    crash_seed,
                    DrillBackend::Remote(plan),
                )));
            }
        }
    }
    cells
}

/// Runs every cell against a cached per-(scenario, seed) baseline and
/// asserts bit-identity. Returns the number of cells drilled.
fn drill_cells(cells: &[DrillCell], label: &str) -> usize {
    let mut baselines: HashMap<(usize, u64), Fingerprint> = HashMap::new();
    for cell in cells {
        let base = baselines
            .entry((cell.scenario, cell.seed))
            .or_insert_with(|| run_uninterrupted(cell.scenario, cell.seed))
            .clone();
        assert!(
            !base.0.is_empty(),
            "{label}: scenario {} baseline took no actions",
            cell.scenario
        );
        let out = run_cell(cell)
            .unwrap_or_else(|e| panic!("{label}: cell {cell:?} failed to recover: {e}"));
        assert_eq!(
            out.fingerprint.0, base.0,
            "{label}: decision log diverged, cell {cell:?} (crash tick {})",
            out.crash_tick
        );
        assert_eq!(
            out.fingerprint.1, base.1,
            "{label}: billing diverged, cell {cell:?} (crash tick {})",
            out.crash_tick
        );
        assert_eq!(
            out.stats.wal_truncated_bytes, 0,
            "{label}: clean kill must leave a clean WAL, cell {cell:?}"
        );
        if let DrillBackend::File(dir) = &cell.backend {
            std::fs::remove_dir_all(dir).ok();
        }
    }
    cells.len()
}

#[test]
fn matrix_covers_at_least_100_cells() {
    let total = mem_cells().len() + file_cells().len() + remote_cells().len();
    assert!(total >= 100, "matrix shrank below the floor: {total} cells");
}

#[test]
fn mem_store_matrix_recovers_bit_identically() {
    let n = drill_cells(&mem_cells(), "mem");
    assert_eq!(n, 40);
}

#[test]
fn file_store_matrix_recovers_bit_identically() {
    let n = drill_cells(&file_cells(), "file");
    assert_eq!(n, 16);
}

#[test]
fn remote_store_matrix_recovers_bit_identically() {
    let n = drill_cells(&remote_cells(), "remote");
    assert_eq!(n, 48);
}

// ---- negative paths: every injected fault counts, digests never change ----

/// Runs scenario 0 / seed 77 with the given store attached the whole way
/// (no crash) and returns its fingerprint.
fn run_attached(store: RemoteKvStore) -> Fingerprint {
    let (mut sim, wh) = build_sim(0, 77);
    let mut kwo = Orchestrator::new(77);
    kwo.attach_store(Box::new(store), sim.now());
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, END_MS);
    fingerprint(&kwo, &sim, wh)
}

#[test]
fn append_faults_count_then_detach_fail_open() {
    let obs = keebo::obs::global();
    let errors_before = obs.counter("keebo.store.append_errors").get();
    let detached_before = obs.counter("keebo.store.detached").get();
    let baseline = run_uninterrupted(0, 77);

    // Every append fails: the genesis append burns all 4 attempts, the
    // store detaches, and the run proceeds exactly as if no store existed.
    let plan = StoreFaultPlan {
        seed: 9,
        append_error_ppm: 1_000_000,
        ..StoreFaultPlan::none()
    };
    let digest = run_attached(RemoteKvStore::new(plan));

    assert_eq!(
        digest, baseline,
        "fail-open: digest must match no-store run"
    );
    // Counters are process-global and tests run in parallel, so assert
    // deltas (≥), never exact values.
    assert!(
        obs.counter("keebo.store.append_errors").get() - errors_before >= 4,
        "each failed append attempt counts"
    );
    assert!(
        obs.counter("keebo.store.detached").get() - detached_before >= 1,
        "exhausted append retries detach the store"
    );
}

#[test]
fn snapshot_faults_count_but_keep_the_store_attached() {
    let obs = keebo::obs::global();
    let errors_before = obs.counter("keebo.store.snapshot_errors").get();
    let baseline = run_uninterrupted(0, 77);

    // Every snapshot write fails: compaction never lands, but appends do —
    // the WAL alone (genesis record first) must still fully recover.
    let plan = StoreFaultPlan {
        seed: 13,
        snapshot_error_ppm: 1_000_000,
        ..StoreFaultPlan::none()
    };
    let store = RemoteKvStore::new(plan);
    let probe = store.clone();
    let (mut sim, wh) = build_sim(0, 77);
    let mut kwo = Orchestrator::new(77);
    kwo.attach_store(Box::new(store), sim.now());
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, END_MS);
    let digest = fingerprint(&kwo, &sim, wh);
    drop(kwo);

    assert_eq!(
        digest, baseline,
        "fail-open: digest must match no-store run"
    );
    assert!(
        obs.counter("keebo.store.snapshot_errors").get() - errors_before >= 3,
        "each failed snapshot attempt counts"
    );
    assert_eq!(probe.snapshot_bytes(), 0, "no snapshot ever landed");
    assert!(probe.wal_records() > 1, "the WAL kept every record");

    // Genesis-first recovery: restore from the snapshot-less survivor (a
    // crash at the very end of the run) and verify replay rebuilt the
    // identical end state, bit for bit, from the genesis record onward.
    let (kwo, stats) = Orchestrator::restore(Box::new(probe), &sim)
        .expect("a snapshot-less store with a genesis record must restore");
    assert_eq!(stats.snapshot_bytes, 0, "replay started from the WAL alone");
    assert!(stats.replayed_records > 1);
    assert_eq!(fingerprint(&kwo, &sim, wh), baseline);
}

#[test]
fn read_timeouts_count_and_surface_after_bounded_retries() {
    let obs = keebo::obs::global();
    let timeouts_before = obs.counter("keebo.store.read_timeouts").get();

    // Healthy writes, permanently timing-out reads: the restore retries a
    // bounded number of times (each counted), then surfaces the error.
    let plan = StoreFaultPlan {
        seed: 21,
        read_timeout_ppm: 1_000_000,
        ..StoreFaultPlan::none()
    };
    let store = RemoteKvStore::new(plan);
    let probe = store.clone();
    let _ = run_attached(store);

    let (sim, _wh) = build_sim(0, 77);
    let err = Orchestrator::restore(Box::new(probe), &sim);
    assert!(err.is_err(), "a permanently timing-out load cannot restore");
    assert!(
        obs.counter("keebo.store.read_timeouts").get() - timeouts_before >= 6,
        "every timed-out load attempt counts"
    );
}

// ---- compaction bounds replay over long runs ----

#[test]
fn compaction_bounds_replay_over_a_10k_tick_run() {
    const TICK: u64 = 5 * MINUTE_MS;
    const TICKS: u64 = 10_000;
    const OBSERVE: u64 = 6 * HOUR_MS;
    let policy = SnapshotPolicy {
        interval_ticks: 500,
        max_wal_bytes: 0,
        max_wal_records: 64,
        retain_snapshots: 3,
    };
    // Per-tick journaling appends at least one record, so between two
    // trigger checks the WAL can overshoot the threshold by a handful of
    // records — never by more than one tick's worth.
    const SLACK: u64 = 16;

    let mut account = Account::new();
    let wh = account.create_warehouse(
        WAREHOUSE,
        WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600),
    );
    let mut sim = Simulator::new(account);
    let end = OBSERVE + TICKS * TICK;
    // Sparse workload: the point is journaling volume, not query pressure.
    for q in generate_trace(
        &EtlWorkload {
            pipelines: 1,
            queries_per_run: 1,
            period_ms: 6 * HOUR_MS,
            ..EtlWorkload::default()
        },
        0,
        end,
        99,
    ) {
        sim.submit_query(wh, q);
    }

    let store = MemStore::new();
    let probe = store.clone();
    let mut kwo = Orchestrator::new(99);
    kwo.attach_store(Box::new(store), sim.now());
    kwo.set_snapshot_policy(policy);
    kwo.manage(
        &sim,
        WAREHOUSE,
        KwoSetup {
            realtime_interval_ms: TICK,
            onboarding_episodes: 1,
            refresh_episodes: 0,
            train_interval_ms: 365 * DAY_MS,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, OBSERVE);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, end);
    drop(kwo);

    assert!(
        probe.wal_records() <= policy.max_wal_records + SLACK,
        "WAL grew unbounded over 10k ticks: {} records",
        probe.wal_records()
    );
    assert_eq!(
        probe.snapshot_generations(),
        u64::from(policy.retain_snapshots) + 1,
        "retention keeps current + retain_snapshots generations"
    );

    let (kwo, stats) = Orchestrator::restore(Box::new(probe), &sim)
        .expect("bounded recovery after a 10k-tick run");
    assert!(
        stats.replayed_records <= policy.max_wal_records + SLACK,
        "replay not bounded: {} records",
        stats.replayed_records
    );
    assert!(stats.snapshot_bytes > 0, "recovery started from a snapshot");
    assert!(kwo.optimizer(WAREHOUSE).is_some());
}

// ---- snapshot-format versioning: v1 reader, v0 snapshot ----

/// Runs scenario 2 / seed 55 to a mid-run crash with a mid-cycle snapshot
/// cadence, so the surviving store holds a *meaty* snapshot (trained
/// optimizer state) plus live WAL records.
fn run_to_crash_with_snapshot() -> (Simulator, WarehouseId, MemStore) {
    let crash_t = OBSERVE_MS + 29 * TICK_MS;
    let (mut sim, wh) = build_sim(2, 55);
    let store = MemStore::new();
    let mut kwo = Orchestrator::new(55);
    kwo.attach_store(Box::new(store.clone()), sim.now());
    kwo.set_snapshot_interval_ticks(10);
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, crash_t);
    drop(kwo);
    (sim, wh, store)
}

#[test]
fn v1_reader_restores_a_v0_snapshot_bit_identically() {
    // Reference: restore from the v1 (enveloped) snapshot and finish.
    let (mut sim_v1, wh_v1, store_v1) = run_to_crash_with_snapshot();
    let (mut kwo, stats_v1) =
        Orchestrator::restore(Box::new(store_v1), &sim_v1).expect("v1 restore");
    kwo.run_until(&mut sim_v1, END_MS);
    let digest_v1 = fingerprint(&kwo, &sim_v1, wh_v1);

    // Same history, but the snapshot is re-encoded in the legacy v0 format
    // (bare JSON, no envelope) — what a store written before the format
    // versioning change holds.
    let (mut sim_v0, wh_v0, store_now) = run_to_crash_with_snapshot();
    let mut boxed: Box<dyn StateStore> = Box::new(store_now);
    let contents = boxed.load().expect("load surviving store");
    let snap_bytes = contents.snapshot.expect("cadence 10 landed a snapshot");
    let snap = decode_snapshot(&snap_bytes).expect("decode v1 snapshot");
    let v0_bytes = encode_snapshot_v0(&snap).expect("re-encode as legacy v0");
    assert_ne!(v0_bytes, snap_bytes, "v0 and v1 encodings must differ");

    let mut legacy = MemStore::new();
    legacy
        .write_snapshot(&v0_bytes)
        .expect("seed legacy snapshot");
    for record in &contents.records {
        legacy.append(record).expect("replay WAL into legacy store");
    }
    let (mut kwo, stats_v0) =
        Orchestrator::restore(Box::new(legacy), &sim_v0).expect("v1 reader restores v0 snapshot");
    kwo.run_until(&mut sim_v0, END_MS);
    let digest_v0 = fingerprint(&kwo, &sim_v0, wh_v0);

    assert_eq!(
        digest_v0, digest_v1,
        "a v0 snapshot must restore bit-identically to its v1 encoding"
    );
    assert_eq!(stats_v0.replayed_records, stats_v1.replayed_records);
}

// ---- versioned-envelope and fault-plan decode properties ----

/// Deterministic byte soup for the no-proptest (offline stub) build.
fn splatter(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed ^ 0x5DEE_CE66_D001u64.wrapping_mul(3);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

fn tiny_snapshot(seed: u64, at: u64) -> keebo::SnapshotState {
    keebo::SnapshotState {
        version: keebo::FORMAT_VERSION,
        seed,
        at,
        optimizers: Vec::new(),
    }
}

#[test]
fn envelope_with_unknown_fields_round_trips_deterministic() {
    for seed in 0..32u64 {
        let snap = tiny_snapshot(seed, seed * 3);
        let extra = vec![
            (0x4000u16, splatter(seed, (seed as usize * 5) % 40)),
            (0x7fffu16, splatter(seed ^ 1, 3)),
        ];
        let bytes = encode_snapshot_with_extra_fields(&snap, &extra).expect("encode with extras");
        let back = decode_snapshot(&bytes).expect("unknown fields are skipped");
        // SnapshotState carries no PartialEq; canonical re-encoding is the
        // equality the store cares about anyway.
        assert_eq!(
            keebo::persist::encode_snapshot(&back).expect("re-encode"),
            keebo::persist::encode_snapshot(&snap).expect("encode"),
        );
        // Every truncation is an error, never a panic.
        for len in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..len]).is_err());
        }
    }
}

#[test]
fn store_fault_plan_genome_decode_is_total_deterministic() {
    for seed in 0..64u64 {
        let genome = splatter(seed, (seed as usize * 3) % 40);
        let plan = StoreFaultPlan::from_genome(&genome);
        assert!(plan.append_error_ppm <= 120_000);
        assert!(plan.snapshot_error_ppm <= 500_000);
        assert!(plan.read_timeout_ppm <= 200_000);
        assert!(plan.latency_us <= 5_000);
        // Deterministic: the same genome always yields the same plan.
        assert_eq!(plan, StoreFaultPlan::from_genome(&genome));
    }
}

proptest! {
    /// The envelope decoder tolerates any unknown header fields and is
    /// total under truncation: v1 readers stay forward-compatible.
    #[test]
    fn envelope_round_trips_with_arbitrary_unknown_fields(
        seed in any::<u64>(),
        at in any::<u64>(),
        extras in proptest::collection::vec(
            (3u16..u16::MAX, proptest::collection::vec(any::<u8>(), 0..48)),
            0..4,
        ),
        cut in any::<proptest::sample::Index>(),
    ) {
        let snap = tiny_snapshot(seed, at);
        let extra: Vec<(u16, Vec<u8>)> = extras;
        let bytes = encode_snapshot_with_extra_fields(&snap, &extra).unwrap();
        let back = decode_snapshot(&bytes).unwrap();
        prop_assert_eq!(
            keebo::persist::encode_snapshot(&back).unwrap(),
            keebo::persist::encode_snapshot(&snap).unwrap(),
        );
        let len = cut.index(bytes.len());
        prop_assert!(decode_snapshot(&bytes[..len]).is_err());
    }

    /// `StoreFaultPlan::from_genome` is total on arbitrary bytes and its
    /// rate caps always hold.
    #[test]
    fn store_fault_plan_genome_decode_is_total(
        genome in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let plan = StoreFaultPlan::from_genome(&genome);
        prop_assert!(plan.append_error_ppm <= 120_000);
        prop_assert!(plan.snapshot_error_ppm <= 500_000);
        prop_assert!(plan.read_timeout_ppm <= 200_000);
        prop_assert!(plan.latency_us <= 5_000);
    }
}

/// Unique scratch dir per cell (integration tests run in parallel).
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kwo-matrix-{}-{tag}-{n}", std::process::id()))
}
