//! Cross-crate integration tests: each test exercises a seam between two or
//! more crates (workload → simulator → telemetry → cost model → agent →
//! orchestration) rather than a single module.

use cdw_sim::{
    Account, ActionSource, QuerySpec, Simulator, WarehouseCommand, WarehouseConfig, WarehouseSize,
    DAY_MS, HOUR_MS, MINUTE_MS,
};
use costmodel::{ReplayConfig, WarehouseCostModel};
use keebo::{
    generate_trace, ConstraintSet, KwoSetup, Orchestrator, Rule, RuleEffect, SliderPosition,
    TimeWindow,
};
use telemetry::{TelemetryFetcher, TelemetryStore, WindowFeatures};
use workload::{AdhocWorkload, BiWorkload, EtlWorkload, MixedWorkload, WorkloadGenerator};

/// Runs a generated trace through the simulator and returns (sim, wh).
fn simulate(
    gen: &dyn WorkloadGenerator,
    config: WarehouseConfig,
    days: u64,
    seed: u64,
) -> (Simulator, cdw_sim::WarehouseId) {
    let mut account = Account::new();
    let wh = account.create_warehouse("WH", config);
    let mut sim = Simulator::new(account);
    for q in generate_trace(gen, 0, days * DAY_MS, seed) {
        sim.submit_query(wh, q);
    }
    sim.run_until(days * DAY_MS);
    (sim, wh)
}

#[test]
fn workload_to_simulator_executes_every_query() {
    let gen = BiWorkload::default();
    let expected = generate_trace(&gen, 0, 2 * DAY_MS, 5).len();
    let (mut sim, _) = simulate(
        &gen,
        WarehouseConfig::new(WarehouseSize::Medium).with_clusters(1, 4),
        2,
        5,
    );
    // Run past the horizon so stragglers complete.
    sim.run_to_completion();
    assert_eq!(sim.account().query_records().len(), expected);
}

#[test]
fn telemetry_pipeline_reflects_simulator_truth() {
    let (mut sim, _) = simulate(
        &EtlWorkload::default(),
        WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(300),
        1,
        3,
    );
    let mut store = TelemetryStore::new();
    let mut fetcher = TelemetryFetcher::new();
    let now = sim.now();
    let n = fetcher
        .fetch(
            sim.account_mut(),
            &mut store,
            now,
            cdw_sim::TelemetryFault::None,
        )
        .unwrap();
    assert_eq!(n, sim.account().query_records().len());
    // Billing snapshot must match the ledger.
    let ledger_total = sim.account().ledger().warehouse("WH").total();
    let store_total = store.billing("WH").map(|h| h.total()).unwrap_or(0.0);
    assert!((ledger_total - store_total).abs() < 1e-9);
    // Window features over the whole day count every arrival.
    let features = WindowFeatures::series(store.queries("WH"), 0, DAY_MS, HOUR_MS);
    let arrivals: usize = features.iter().map(|w| w.arrivals).sum();
    assert_eq!(arrivals, store.total_queries());
}

#[test]
fn cost_model_trained_on_telemetry_reprices_the_same_period_accurately() {
    // Replaying a period under the *same* configuration it actually ran
    // with must approximately reproduce the actual bill (self-consistency).
    let config = WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(300);
    let (sim, wh) = simulate(&EtlWorkload::default(), config.clone(), 3, 7);
    let records = sim.account().query_records().to_vec();
    let model = WarehouseCostModel::train(&records, 0, 3 * DAY_MS, 8, 1);
    let outcome = model.replay(
        &records,
        &ReplayConfig {
            original: config,
            window_start: 0,
            window_end: 3 * DAY_MS,
        },
    );
    let actual = sim.account().ledger().warehouse("WH").total()
        + sim.account().warehouse(wh).open_session_credits(sim.now());
    let rel_err = (outcome.estimated_credits - actual).abs() / actual;
    assert!(
        rel_err < 0.25,
        "self-replay should be accurate: estimated {:.2} vs actual {actual:.2} ({:.0}% off)",
        outcome.estimated_credits,
        rel_err * 100.0
    );
}

#[test]
fn mixed_workloads_preserve_component_volumes() {
    let mix = MixedWorkload::new("hybrid")
        .with(EtlWorkload::default())
        .with(BiWorkload::default())
        .with(AdhocWorkload::default());
    let total = generate_trace(&mix, 0, DAY_MS, 11).len();
    let parts: usize = [
        generate_trace(&EtlWorkload::default(), 0, DAY_MS, 11).len(),
        generate_trace(&BiWorkload::default(), 0, DAY_MS, 11).len(),
        generate_trace(&AdhocWorkload::default(), 0, DAY_MS, 11).len(),
    ]
    .iter()
    .sum();
    // Component RNGs differ inside the mix, so stochastic volumes differ,
    // but the magnitude must match.
    assert!(
        (total as f64 - parts as f64).abs() / parts as f64 <= 0.5,
        "mix volume {total} vs parts {parts}"
    );
}

#[test]
fn actuator_commands_change_the_simulated_warehouse() {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "WH",
        WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600),
    );
    let mut sim = Simulator::new(account);
    sim.submit_query(
        wh,
        QuerySpec::builder(1)
            .work_ms_xs(5_000.0)
            .arrival_ms(0)
            .build(),
    );
    sim.run_until(MINUTE_MS);

    sim.alter_warehouse(
        wh,
        WarehouseCommand::SetSize(WarehouseSize::Small),
        ActionSource::Keebo,
    )
    .unwrap();
    sim.alter_warehouse(
        wh,
        WarehouseCommand::SetAutoSuspend { ms: 60_000 },
        ActionSource::Keebo,
    )
    .unwrap();
    sim.alter_warehouse(
        wh,
        WarehouseCommand::SetClusterRange { min: 1, max: 3 },
        ActionSource::Keebo,
    )
    .unwrap();
    let desc = sim.account().describe(wh);
    assert_eq!(desc.config.size, WarehouseSize::Small);
    assert_eq!(desc.config.auto_suspend_ms, 60_000);
    assert_eq!(desc.config.max_clusters, 3);
    // Keebo-sourced events are distinguishable from external ones.
    assert!(sim
        .account()
        .event_records()
        .iter()
        .any(|e| e.source == ActionSource::Keebo));
}

#[test]
fn orchestrator_honors_constraints_end_to_end() {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "WH",
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&AdhocWorkload::default(), 0, 4 * DAY_MS, 13) {
        sim.submit_query(wh, q);
    }
    // Hard floor: never below Large, ever.
    let constraints = ConstraintSet::new().with_rule(Rule::new(
        "always-large",
        TimeWindow::always(),
        RuleEffect::MinSize(WarehouseSize::Large),
    ));
    let mut kwo = Orchestrator::new(17);
    kwo.manage(
        &sim,
        "WH",
        KwoSetup {
            slider: SliderPosition::LowestCost, // maximum downsizing pressure
            constraints,
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 2,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 4 * DAY_MS);
    // No query ever executed below Large, and the final size respects the
    // constraint.
    for r in sim.account().query_records() {
        assert!(r.size >= WarehouseSize::Large, "query ran at {:?}", r.size);
    }
    assert!(sim.account().describe(wh).config.size >= WarehouseSize::Large);
}

#[test]
fn orchestrator_manages_multiple_warehouses_independently() {
    use rand::SeedableRng;
    let mut account = Account::new();
    let a = account.create_warehouse(
        "ETL_WH",
        WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600),
    );
    let b = account.create_warehouse(
        "ADHOC_WH",
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&EtlWorkload::default(), 0, 3 * DAY_MS, 1) {
        sim.submit_query(a, q);
    }
    // Disjoint id space for the second warehouse's trace.
    let mut ids = workload::IdAllocator::starting_at(1_000_000);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for q in AdhocWorkload::default().generate(0, 3 * DAY_MS, &mut ids, &mut rng) {
        sim.submit_query(b, q);
    }
    let fast = KwoSetup {
        realtime_interval_ms: 30 * MINUTE_MS,
        onboarding_episodes: 1,
        ..KwoSetup::default()
    };
    let mut kwo = Orchestrator::new(23);
    kwo.manage(&sim, "ETL_WH", fast.clone());
    kwo.manage(&sim, "ADHOC_WH", fast);
    kwo.observe_until(&mut sim, DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 3 * DAY_MS);
    // Each optimizer only saw (and acted on) its own warehouse.
    let etl = kwo.optimizer("ETL_WH").unwrap();
    let adhoc = kwo.optimizer("ADHOC_WH").unwrap();
    assert!(!etl.store().queries("ETL_WH").is_empty());
    assert!(!adhoc.store().queries("ADHOC_WH").is_empty());
    assert!(etl.actuator().log().iter().all(|e| e.warehouse == "ETL_WH"));
    assert!(adhoc
        .actuator()
        .log()
        .iter()
        .all(|e| e.warehouse == "ADHOC_WH"));
}

#[test]
fn hashing_boundary_keeps_query_text_out_of_telemetry() {
    // The C6 path: raw SQL gets hashed before entering the stores; two
    // queries differing only in literals share a template hash.
    let a = "SELECT sum(amount) FROM orders WHERE day = '2023-06-18'";
    let b = "SELECT sum(amount) FROM orders WHERE day = '2023-06-19'";
    assert_ne!(telemetry::hash_query_text(a), telemetry::hash_query_text(b));
    assert_eq!(
        telemetry::hash_query_template(a),
        telemetry::hash_query_template(b)
    );
    // The spec carries only the u64 hashes.
    let rec_text_hash: u64 = telemetry::hash_query_text(a);
    let _ = QuerySpec::builder(1).text_hash(rec_text_hash).build();
}
