//! Property-based tests over the core invariants: billing arithmetic,
//! simulator conservation laws, cost-model monotonicity, cache bounds, and
//! constraint-mask safety.

// Offline builds patch proptest with a no-op stub (.devstubs/), under which
// the imports and strategy helpers below count as unused; real proptest
// (CI) uses all of them.
#![allow(unused_imports, dead_code)]

use cdw_sim::{
    billing::{session_credits, HourlyCredits, MIN_BILL_SECONDS},
    Account, CacheState, QuerySpec, Simulator, WarehouseConfig, WarehouseSize, HOUR_MS, MINUTE_MS,
    SECOND_MS,
};
use costmodel::{GapModel, ReplayConfig, WarehouseCostModel};
use keebo::{ConstraintSet, Rule, RuleEffect, TimeWindow};
use proptest::prelude::*;

fn arb_size() -> impl Strategy<Value = WarehouseSize> {
    (0usize..10).prop_map(|i| WarehouseSize::from_index(i).unwrap())
}

/// Cases per property, overridable with `PROPTEST_CASES` (e.g.
/// `PROPTEST_CASES=4096 cargo test --test properties` for a deep run, or a
/// small value for quick iteration). The default matches proptest's own.
/// Under the offline dev stub the `proptest!` body is swallowed, so this
/// helper is only called when building against the real crate (CI).
#[allow(dead_code)]
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// Billing: every session bills at least the 60-second minimum and
    /// scales linearly past it.
    #[test]
    fn session_credits_respect_minimum_and_linearity(
        size in arb_size(),
        duration_ms in 0u64..10_000_000,
    ) {
        let credits = session_credits(size, duration_ms);
        let min = MIN_BILL_SECONDS as f64 * size.credits_per_second();
        prop_assert!(credits >= min - 1e-12);
        // Doubling a long session doubles its cost.
        if duration_ms > 200_000 {
            let double = session_credits(size, duration_ms * 2);
            let ratio = double / credits;
            prop_assert!((ratio - 2.0).abs() < 0.02, "ratio {ratio}");
        }
    }

    /// Billing: hourly attribution conserves the session total.
    #[test]
    fn hourly_attribution_conserves_credits(
        size in arb_size(),
        start in 0u64..100 * HOUR_MS,
        duration_ms in 1u64..5 * HOUR_MS,
    ) {
        let mut h = HourlyCredits::new();
        h.add_session(size, start, start + duration_ms);
        let direct = session_credits(size, duration_ms);
        // Sub-second rounding differs by at most one second's worth.
        prop_assert!((h.total() - direct).abs() <= size.credits_per_second() + 1e-9);
    }

    /// Simulator: every submitted query eventually completes exactly once,
    /// with start >= arrival and end > start.
    #[test]
    fn queries_are_conserved(
        n in 1usize..40,
        concurrency in 1u32..8,
        max_clusters in 1u32..4,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut account = Account::new();
        let wh = account.create_warehouse(
            "WH",
            WarehouseConfig::new(WarehouseSize::Small)
                .with_auto_suspend_secs(60)
                .with_clusters(1, max_clusters)
                .with_max_concurrency(concurrency),
        );
        let mut sim = Simulator::new(account);
        for i in 0..n {
            let arrival = rng.gen_range(0..2 * HOUR_MS);
            let work = rng.gen_range(1_000.0..120_000.0);
            sim.submit_query(
                wh,
                QuerySpec::builder(i as u64)
                    .work_ms_xs(work)
                    .arrival_ms(arrival)
                    .build(),
            );
        }
        sim.run_to_completion();
        let records = sim.account().query_records();
        prop_assert_eq!(records.len(), n, "all queries complete");
        let mut seen = std::collections::HashSet::new();
        for r in records {
            prop_assert!(seen.insert(r.query_id), "no duplicate completions");
            prop_assert!(r.start >= r.arrival);
            prop_assert!(r.end > r.start);
            prop_assert!(r.cluster_count >= 1 && r.cluster_count <= max_clusters);
        }
        // Billing is non-negative and bounded by always-on at max scale.
        let credits = sim.account().ledger().warehouse("WH").total();
        let horizon_hours = sim.now() as f64 / HOUR_MS as f64;
        let upper = WarehouseSize::Small.credits_per_hour()
            * max_clusters as f64
            * (horizon_hours + 1.0);
        prop_assert!(credits >= 0.0 && credits <= upper, "credits {credits} vs bound {upper}");
    }

    /// Cache: warm fraction stays in [0, 1] under any operation sequence.
    #[test]
    fn cache_warmth_is_bounded(ops in prop::collection::vec(0u8..3, 1..50)) {
        let mut cache = CacheState::with_default_tau();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => cache.record_execution((i as u64 + 1) * 10_000),
                1 => cache.drop_cache(),
                _ => cache.invalidate(0.3),
            }
            prop_assert!((0.0..=1.0).contains(&cache.warm_fraction()));
        }
    }

    /// Cost model: the without-Keebo estimate is monotonically non-decreasing
    /// in the original auto-suspend interval (more idle time billed).
    #[test]
    fn replay_cost_monotone_in_auto_suspend(
        gap_minutes in 1u64..120,
        n in 2usize..20,
    ) {
        let records: Vec<cdw_sim::QueryRecord> = (0..n as u64)
            .map(|i| cdw_sim::QueryRecord {
                query_id: i,
                warehouse: "WH".into(),
                size: WarehouseSize::Small,
                cluster_count: 1,
                text_hash: i,
                template_hash: 1,
                arrival: i * gap_minutes * MINUTE_MS,
                start: i * gap_minutes * MINUTE_MS,
                end: i * gap_minutes * MINUTE_MS + 30 * SECOND_MS,
                bytes_scanned: 0,
                cache_warm_fraction: 1.0,
            })
            .collect();
        let model = WarehouseCostModel::default();
        let mut last = 0.0;
        for auto_secs in [30u64, 120, 600, 1800] {
            let cfg = ReplayConfig {
                original: WarehouseConfig::new(WarehouseSize::Small)
                    .with_auto_suspend_secs(auto_secs),
                window_start: 0,
                window_end: (n as u64 + 1) * gap_minutes * MINUTE_MS + HOUR_MS,
            };
            let cost = model.replay(&records, &cfg).estimated_credits;
            prop_assert!(cost >= last - 1e-9, "auto {auto_secs}: {cost} < {last}");
            last = cost;
        }
    }

    /// Cost model: replaying at a larger original size never costs less for
    /// serial, gap-dominated workloads.
    #[test]
    fn replay_cost_monotone_in_size_for_sparse_work(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let records: Vec<cdw_sim::QueryRecord> = (0..10u64)
            .map(|i| {
                let arrival = i * HOUR_MS + rng.gen_range(0..30 * MINUTE_MS);
                cdw_sim::QueryRecord {
                    query_id: i,
                    warehouse: "WH".into(),
                    size: WarehouseSize::Small,
                    cluster_count: 1,
                    text_hash: i,
                    template_hash: 1,
                    arrival,
                    start: arrival,
                    end: arrival + rng.gen_range(10..120) * SECOND_MS,
                    bytes_scanned: 0,
                    cache_warm_fraction: 1.0,
                }
            })
            .collect();
        let model = WarehouseCostModel::default();
        let cost_at = |size: WarehouseSize| {
            model
                .replay(
                    &records,
                    &ReplayConfig {
                        original: WarehouseConfig::new(size).with_auto_suspend_secs(600),
                        window_start: 0,
                        window_end: 12 * HOUR_MS,
                    },
                )
                .estimated_credits
        };
        prop_assert!(cost_at(WarehouseSize::Medium) >= cost_at(WarehouseSize::Small) - 1e-9);
        prop_assert!(cost_at(WarehouseSize::XLarge) >= cost_at(WarehouseSize::Medium) - 1e-9);
    }

    /// Gap model: the billable gap clamp never exceeds either input.
    #[test]
    fn billable_gap_clamp_bounds(gap in 0u64..10 * HOUR_MS, auto in 1u64..2 * HOUR_MS) {
        let clamped = GapModel::clamp_billable_gap(gap, auto);
        prop_assert!(clamped <= gap);
        prop_assert!(clamped <= auto);
    }

    /// Constraints: the action mask always permits at least one action, and
    /// every permitted action produces a valid configuration.
    #[test]
    fn constraint_masks_are_safe(
        size in arb_size(),
        max_clusters in 1u32..10,
        auto_secs in prop::sample::select(vec![30u64, 60, 300, 600, 1800, 3600]),
        hour in 0u64..24,
        min_size_idx in 0usize..10,
    ) {
        let config = WarehouseConfig::new(size)
            .with_auto_suspend_secs(auto_secs)
            .with_clusters(1, max_clusters);
        let cs = ConstraintSet::new()
            .with_rule(Rule::new(
                "floor",
                TimeWindow::daily(8.0, 18.0),
                RuleEffect::MinSize(WarehouseSize::from_index(min_size_idx).unwrap()),
            ))
            .with_rule(Rule::new(
                "no-suspend-night",
                TimeWindow::daily(22.0, 2.0),
                RuleEffect::NoSuspend,
            ));
        let t = hour * HOUR_MS;
        let mask = cs.action_mask(&config, t);
        prop_assert!(mask.iter().any(|&m| m), "mask must never be empty");
        for (i, action) in agent::AgentAction::ALL.iter().enumerate() {
            if mask[i] {
                let next = action.target_config(&config);
                prop_assert!(next.validate().is_ok(), "{action:?} broke the config");
                // NoOp is exempt: it is always maskable so the mask is never
                // empty, even when the standing config predates a rule it
                // already violates.
                if *action != agent::AgentAction::NoOp {
                    prop_assert!(cs.allows(*action, &config, t));
                }
            }
        }
    }

    /// Telemetry percentile: result is always an element of the input and
    /// monotone in p.
    #[test]
    fn percentile_selects_monotonically(
        mut values in prop::collection::vec(0.0f64..1e6, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = telemetry::percentile(&values, lo);
        let b = telemetry::percentile(&values, hi);
        prop_assert!(a <= b);
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(values.contains(&a));
    }

    /// Simulator determinism under arbitrary seeds: two identical runs give
    /// byte-identical telemetry.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..50) {
        let run = || {
            let mut account = Account::new();
            let wh = account.create_warehouse(
                "WH",
                WarehouseConfig::new(WarehouseSize::Small)
                    .with_auto_suspend_secs(120)
                    .with_clusters(1, 3)
                    .with_max_concurrency(2),
            );
            let mut sim = Simulator::new(account);
            for q in keebo::generate_trace(&workload::BiWorkload::default(), 0, 6 * HOUR_MS, seed) {
                sim.submit_query(wh, q);
            }
            sim.run_until(8 * HOUR_MS);
            (
                sim.account().ledger().warehouse("WH").total(),
                sim.account().query_records().to_vec(),
            )
        };
        let (c1, r1) = run();
        let (c2, r2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(r1, r2);
    }
}
