//! Serving-gateway acceptance tests: determinism across thread counts,
//! priority isolation under flood, and per-tenant quota fairness.
//!
//! The gateway extends the repo's crown-jewel invariant — bit-identical
//! results at any worker count — to the admission/dispatch path: the same
//! request sequence must produce the same admission decisions, the same
//! shed set, and the same fleet digest whether shards run on 1 worker or 8.

use cdw_sim::{QuerySpec, WarehouseConfig, WarehouseSize, DAY_MS, HOUR_MS, MINUTE_MS};
use keebo::orchestrator::derive_stream_seed;
use keebo::{
    Admission, Gateway, GatewayConfig, GatewayStats, KwoSetup, Priority, Request, RequestKind,
    Rule, RuleEffect, ShedReason, SliderPosition, TenantSpec, TimeWindow, WarehouseSpec,
    WorkerPool,
};
use workload::loadgen::{LoadEvent, LoadOp, LoadPriority};
use workload::{generate_trace, open_loop_plan, BiWorkload, EtlWorkload};

fn fast_setup() -> KwoSetup {
    KwoSetup {
        realtime_interval_ms: 30 * MINUTE_MS,
        onboarding_episodes: 2,
        refresh_episodes: 0,
        train_interval_ms: 2 * DAY_MS,
        ..KwoSetup::default()
    }
}

fn warehouse_spec(name: &str, archetype: usize, seed: u64, days: u64) -> WarehouseSpec {
    let queries = match archetype % 2 {
        0 => generate_trace(
            &EtlWorkload {
                pipelines: 2,
                queries_per_run: 2,
                period_ms: 2 * HOUR_MS,
                ..EtlWorkload::default()
            },
            0,
            days * DAY_MS,
            seed,
        ),
        _ => generate_trace(
            &BiWorkload {
                dashboards: 2,
                queries_per_refresh: 2,
                peak_refreshes_per_hour: 4.0,
                ..BiWorkload::default()
            },
            0,
            days * DAY_MS,
            seed,
        ),
    };
    WarehouseSpec {
        name: name.to_string(),
        config: WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(1800),
        setup: fast_setup(),
        queries: queries.into(),
    }
}

fn tenant(seed: u64, t: usize, warehouses: usize, days: u64) -> TenantSpec {
    let mut tenant = TenantSpec::new(format!("tenant-{t}"));
    for w in 0..warehouses {
        let name = format!("T{t}_WH{w}");
        let wh_seed = derive_stream_seed(seed, &name);
        tenant = tenant.add_warehouse(warehouse_spec(&name, t + w, wh_seed, days));
    }
    tenant
}

fn to_request(e: &LoadEvent) -> Request {
    let priority = match e.priority {
        LoadPriority::Interactive => Priority::Interactive,
        LoadPriority::Batch => Priority::Batch,
    };
    let kind = match &e.op {
        LoadOp::SubmitQuery { work_ms } => RequestKind::SubmitQuery {
            warehouse: e.warehouse.clone(),
            spec: QuerySpec::builder(0).work_ms_xs(*work_ms).build(),
        },
        LoadOp::SetSlider { position } => RequestKind::SetSlider {
            warehouse: e.warehouse.clone(),
            slider: match position {
                0 => SliderPosition::LowestCost,
                1 => SliderPosition::LowCost,
                2 => SliderPosition::Balanced,
                3 => SliderPosition::GoodPerformance,
                _ => SliderPosition::BestPerformance,
            },
        },
        LoadOp::EditConstraint => RequestKind::EditConstraint {
            warehouse: e.warehouse.clone(),
            rule: Rule::new(
                "no-suspend",
                TimeWindow::daily(8.0, 18.0),
                RuleEffect::NoSuspend,
            ),
        },
        LoadOp::TraceQuery => RequestKind::TraceQuery {
            warehouse: e.warehouse.clone(),
        },
    };
    Request {
        tenant: e.tenant.clone(),
        priority,
        kind,
    }
}

/// Replays `plan` through `ticks` control ticks: events with `tick == k`
/// are submitted after `k` ticks have run, then the tick executes.
fn drive(
    gw: &mut Gateway,
    pool: &WorkerPool,
    parallelism: usize,
    plan: &[LoadEvent],
    ticks: u64,
) -> Vec<Admission> {
    let mut decisions = Vec::new();
    let mut next = 0usize;
    for tick in 0..ticks {
        while next < plan.len() && plan[next].tick == tick {
            decisions.push(gw.submit(to_request(&plan[next])));
            next += 1;
        }
        gw.tick(pool, parallelism);
    }
    decisions
}

#[test]
fn gateway_is_bit_identical_across_thread_counts() {
    const SEED: u64 = 601;
    const TICKS: u64 = 12;
    let tenant_names: Vec<(String, Vec<String>)> = (0..3)
        .map(|t| {
            (
                format!("tenant-{t}"),
                (0..2).map(|w| format!("T{t}_WH{w}")).collect(),
            )
        })
        .collect();
    // Tight bucket so the plan exercises shedding, not just admission.
    let config = GatewayConfig {
        bucket_capacity: 2.0,
        refill_per_tick: 1.0,
        ..GatewayConfig::default()
    };
    let plan = open_loop_plan(SEED, &tenant_names, TICKS, 3.0, 0.6);
    assert!(!plan.is_empty());

    let pool = WorkerPool::new(8);
    let mut baseline: Option<(Vec<Admission>, u64, u64, u64, GatewayStats)> = None;
    for parallelism in [1usize, 2, 4, 8] {
        let tenants: Vec<TenantSpec> = (0..3).map(|t| tenant(SEED, t, 2, 2)).collect();
        let mut gw = Gateway::new(SEED, config.clone(), tenants);
        gw.start(&pool, parallelism, DAY_MS);
        let decisions = drive(&mut gw, &pool, parallelism, &plan, TICKS);
        let (report, stats) = gw.finish(&pool, parallelism);
        match &baseline {
            None => {
                assert!(stats.admitted > 0, "plan admitted nothing");
                assert!(stats.shed.total() > 0, "plan shed nothing");
                baseline = Some((
                    decisions,
                    report.digest(),
                    stats.decisions_digest,
                    stats.responses_digest,
                    stats,
                ));
            }
            Some((d0, fleet0, dec0, resp0, s0)) => {
                assert_eq!(
                    &decisions, d0,
                    "admission decisions diverged at {parallelism}"
                );
                assert_eq!(
                    report.digest(),
                    *fleet0,
                    "fleet digest diverged at {parallelism}"
                );
                assert_eq!(
                    stats.decisions_digest, *dec0,
                    "decision digest diverged at {parallelism}"
                );
                assert_eq!(
                    stats.responses_digest, *resp0,
                    "response digest diverged at {parallelism}"
                );
                assert_eq!(stats.shed, s0.shed, "shed set diverged at {parallelism}");
                assert_eq!(
                    stats.wait_ticks_interactive, s0.wait_ticks_interactive,
                    "interactive waits diverged at {parallelism}"
                );
                assert_eq!(
                    stats.wait_ticks_batch, s0.wait_ticks_batch,
                    "batch waits diverged at {parallelism}"
                );
            }
        }
    }
}

#[test]
fn interactive_latency_is_bounded_under_batch_flood() {
    const SEED: u64 = 701;
    const TICKS: u64 = 16;
    let pool = WorkerPool::new(2);
    let config = GatewayConfig {
        bucket_capacity: 64.0,
        refill_per_tick: 64.0,
        quota: 100_000,
        queue_capacity: 64,
        batch_per_tenant: 2,
        reserved_batch_slots: 1,
        ..GatewayConfig::default()
    };
    let mut gw = Gateway::new(SEED, config, vec![tenant(SEED, 0, 1, 2)]);
    gw.start(&pool, 2, DAY_MS);

    // Every tick: a 4-wide batch/ETL flood plus one interactive request.
    for _ in 0..TICKS {
        for _ in 0..4 {
            let a = gw.submit(Request {
                tenant: "tenant-0".to_string(),
                priority: Priority::Batch,
                kind: RequestKind::SubmitQuery {
                    warehouse: "T0_WH0".to_string(),
                    spec: QuerySpec::builder(0).work_ms_xs(60_000.0).build(),
                },
            });
            assert!(
                a.is_admitted()
                    || matches!(
                        a,
                        Admission::Shed {
                            reason: ShedReason::QueueFull
                        }
                    )
            );
        }
        let interactive = gw.submit(Request {
            tenant: "tenant-0".to_string(),
            priority: Priority::Interactive,
            kind: RequestKind::TraceQuery {
                warehouse: "T0_WH0".to_string(),
            },
        });
        assert!(
            interactive.is_admitted(),
            "interactive must never queue-shed here"
        );
        gw.tick(&pool, 2);
    }
    let (_, stats) = gw.finish(&pool, 2);

    // Interactive requests dispatch on the very next tick (wait 0) even
    // though batch arrivals outnumber them 4:1 and the batch queue backs
    // up; p99 stays under one tick of waiting.
    assert_eq!(stats.dispatched_interactive, TICKS);
    let p99 = telemetry::percentile(&stats.wait_ticks_interactive, 99.0);
    assert!(
        p99 <= 1.0,
        "interactive p99 wait {p99} ticks under batch flood"
    );
    // Starvation protection: the reserved slot kept draining batch work
    // every tick.
    assert!(
        stats.dispatched_batch >= TICKS,
        "batch starved: only {} dispatched over {TICKS} ticks",
        stats.dispatched_batch
    );
}

#[test]
fn noisy_tenant_cannot_degrade_a_quiet_one() {
    const SEED: u64 = 801;
    const TICKS: u64 = 10;
    let config = GatewayConfig {
        bucket_capacity: 4.0,
        refill_per_tick: 2.0,
        // Low enough that the noisy tenant's ~2/tick trickle of admitted
        // requests exhausts it mid-run; the quiet tenant's 1/tick never
        // gets close.
        quota: 15,
        queue_capacity: 8,
        ..GatewayConfig::default()
    };
    let pool = WorkerPool::new(2);

    let quiet_request = || Request {
        tenant: "tenant-1".to_string(),
        priority: Priority::Interactive,
        kind: RequestKind::TraceQuery {
            warehouse: "T1_WH0".to_string(),
        },
    };

    // Run 1: noisy tenant-0 floods; quiet tenant-1 sends one request per
    // tick.
    let tenants = vec![tenant(SEED, 0, 1, 2), tenant(SEED, 1, 1, 2)];
    let mut gw = Gateway::new(SEED, config.clone(), tenants);
    gw.start(&pool, 2, DAY_MS);
    let unknown = gw.submit(Request {
        tenant: "tenant-99".to_string(),
        priority: Priority::Interactive,
        kind: RequestKind::TraceQuery {
            warehouse: "W".to_string(),
        },
    });
    assert_eq!(
        unknown,
        Admission::Shed {
            reason: ShedReason::UnknownTenant
        }
    );
    let mut quiet_all_admitted = true;
    for _ in 0..TICKS {
        for _ in 0..12 {
            gw.submit(Request {
                tenant: "tenant-0".to_string(),
                priority: Priority::Batch,
                kind: RequestKind::SubmitQuery {
                    warehouse: "T0_WH0".to_string(),
                    spec: QuerySpec::builder(0).work_ms_xs(30_000.0).build(),
                },
            });
        }
        quiet_all_admitted &= gw.submit(quiet_request()).is_admitted();
        gw.tick(&pool, 2);
    }
    let (report, stats) = gw.finish(&pool, 2);
    assert!(quiet_all_admitted, "quiet tenant was shed");
    assert!(
        stats.shed.rate_limited > 0 && stats.shed.quota_exhausted > 0,
        "noisy tenant should trip both limiters: {:?}",
        stats.shed
    );
    let quiet = report
        .tenants
        .iter()
        .find(|t| t.tenant == "tenant-1")
        .expect("quiet tenant reported");

    // Run 2: the quiet tenant alone, same request sequence — its shard
    // results must be bit-identical to run 1 (per-tenant meters, queues,
    // and name-derived seeds isolate it from the noisy neighbor).
    let mut solo = Gateway::new(SEED, config, vec![tenant(SEED, 1, 1, 2)]);
    solo.start(&pool, 2, DAY_MS);
    for _ in 0..TICKS {
        assert!(solo.submit(quiet_request()).is_admitted());
        solo.tick(&pool, 2);
    }
    let (solo_report, solo_stats) = solo.finish(&pool, 2);
    let solo_quiet = &solo_report.tenants[0];
    assert_eq!(
        quiet.estimated_savings.to_bits(),
        solo_quiet.estimated_savings.to_bits(),
        "noisy neighbor perturbed the quiet tenant's savings"
    );
    assert_eq!(
        quiet.actual_with_keebo.to_bits(),
        solo_quiet.actual_with_keebo.to_bits()
    );
    assert_eq!(quiet.ops.actions_applied, solo_quiet.ops.actions_applied);
    assert_eq!(solo_stats.shed.total(), 0, "solo quiet tenant never shed");
}
