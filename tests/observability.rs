//! Integration tests for the observability layer: a two-week single-warehouse
//! run must yield a complete, explainable, JSONL-round-trippable decision
//! trace, and the metrics registry must capture the decision path end to end.

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS, MINUTE_MS};
use keebo::{generate_trace, DecisionTrace, KwoSetup, Orchestrator};
use workload::BiWorkload;

/// Runs the standard scenario: observe week one, onboard, optimize week two
/// at a 30-minute control cadence.
fn optimized_two_weeks() -> (Orchestrator, Simulator) {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "BI_WH",
        WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(1800)
            .with_clusters(1, 2),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&BiWorkload::default(), 0, 14 * DAY_MS, 42) {
        sim.submit_query(wh, q);
    }
    let mut kwo = Orchestrator::new(42);
    kwo.manage(
        &sim,
        "BI_WH",
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 2,
            refresh_episodes: 0,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, 7 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 14 * DAY_MS);
    (kwo, sim)
}

#[test]
fn two_week_run_traces_every_decision_and_round_trips() {
    let (kwo, _sim) = optimized_two_weeks();
    let trace = kwo.optimizer("BI_WH").expect("managed").trace();

    // One event per post-onboarding control tick: 7 days at 30-minute
    // cadence is 336 ticks (give slack for the onboarding boundary tick).
    assert!(
        (330..=340).contains(&trace.len()),
        "expected ~336 decision events, got {}",
        trace.len()
    );
    assert_eq!(
        trace.dropped(),
        0,
        "default capacity must hold a two-week run"
    );

    for e in trace.events() {
        // Every event answers: who, when, what, and why.
        assert_eq!(e.warehouse, "BI_WH");
        assert!(
            (168..=336).contains(&e.hour),
            "hour {} outside week two",
            e.hour
        );
        assert!(
            !e.chosen.is_empty(),
            "event at t={} has no chosen action",
            e.t_ms
        );
        assert!(!e.reason.is_empty(), "event at t={} has no reason", e.t_ms);
        assert!(!e.health.is_empty() && !e.size.is_empty());

        // Masked actions always carry at least one masking reason; allowed
        // actions never do. NoOp is unmaskable.
        for m in &e.mask {
            if m.allowed {
                assert!(
                    m.reasons.is_empty(),
                    "{}: allowed but has reasons",
                    m.action
                );
            } else {
                assert!(
                    !m.reasons.is_empty(),
                    "{}: masked without a reason",
                    m.action
                );
            }
        }
        if !e.mask.is_empty() {
            let noop = e
                .mask
                .iter()
                .find(|m| m.action == "NoOp")
                .expect("NoOp in mask");
            assert!(noop.allowed, "NoOp masked at t={}", e.t_ms);
        }
        // A policy decision must have been picked from the allowed set.
        if e.reason == "policy" {
            let entry = e.mask.iter().find(|m| m.action == e.chosen);
            assert!(
                entry.is_some_and(|m| m.allowed),
                "policy chose {} but mask disallows it",
                e.chosen
            );
        }

        // Features were sanitized at record time: everything is finite, so
        // the JSONL export cannot contain nulls.
        for v in [
            e.features.arrival_rate_per_hour,
            e.features.mean_latency_ms,
            e.features.p99_latency_ms,
            e.features.mean_queue_ms,
            e.features.mean_concurrency,
            e.features.load_zscore,
            e.features.latency_ratio,
        ] {
            assert!(v.is_finite(), "non-finite feature at t={}", e.t_ms);
        }
    }

    // The JSONL export round-trips losslessly.
    let jsonl = trace.to_jsonl();
    assert_eq!(jsonl.lines().count(), trace.len());
    let parsed = DecisionTrace::parse_jsonl(&jsonl).expect("all lines parse");
    let original: Vec<_> = trace.events().cloned().collect();
    assert_eq!(parsed, original);
}

#[test]
fn trace_answers_why_at_a_given_hour() {
    let (kwo, _sim) = optimized_two_weeks();
    let trace = kwo.optimizer("BI_WH").expect("managed").trace();

    // "Why did BI_WH do what it did at hour 200?" — two ticks per hour at
    // the 30-minute cadence, each with a chosen action, a reason, and the
    // full mask explaining the alternatives.
    let at_200 = trace.events_at_hour(200);
    assert_eq!(at_200.len(), 2, "expected 2 ticks in hour 200");
    for e in at_200 {
        assert!(!e.reason.is_empty());
        assert!(
            e.mask.is_empty() || e.mask.iter().any(|m| m.allowed),
            "mask at t={} allows nothing",
            e.t_ms
        );
    }
}

#[test]
fn metrics_registry_captures_the_decision_path() {
    let (kwo, sim) = optimized_two_weeks();
    // The savings report replays the optimized week through the cost model,
    // exercising the replay metrics.
    let _ = kwo.savings_report(&sim, "BI_WH", 7 * DAY_MS, 14 * DAY_MS);
    let snap = keebo::obs::global().snapshot();
    assert!(!snap.is_empty());

    let queue = snap
        .histograms
        .iter()
        .find(|h| h.name == "cdw_sim.query.queue_wait_ms")
        .expect("queue wait histogram registered");
    assert!(queue.count > 0, "no queue waits observed");

    let tick = snap
        .histograms
        .iter()
        .find(|h| h.name == "keebo.tick.wall_us")
        .expect("tick wall histogram registered");
    assert!(tick.count > 0, "no tick wall times observed");
    assert!(tick.sum.is_finite() && tick.sum > 0.0);

    assert!(
        snap.counters
            .iter()
            .any(|(name, v)| name == "costmodel.replay.runs" && *v > 0),
        "replay runs not counted"
    );

    // The Prometheus rendering of a live snapshot is well-formed: every
    // histogram ends in a _count line and bucket counts are cumulative.
    let text = keebo::obs::prometheus_text(&snap);
    assert!(text.contains("# TYPE cdw_sim_query_queue_wait_ms histogram"));
    assert!(text.contains("cdw_sim_query_queue_wait_ms_bucket{le=\"+Inf\"}"));
    assert!(text.contains(&format!(
        "cdw_sim_query_queue_wait_ms_count {}",
        queue.count
    )));
}
