//! Crash-recovery suite: the durable control plane end to end.
//!
//! Crash model (see `keebo::store`): the control-plane process dies, the
//! warehouse — the cloud — survives. The contracts pinned here:
//!
//! 1. a clean kill at *any* tick boundary recovers bit-identically — the
//!    recovered run's decision log and billing match an uninterrupted run
//!    of the same scenario exactly (smoke here; the ≥100-cell
//!    backend × fault-plan × crash-tick matrix lives in
//!    `tests/store_matrix.rs`, driven by the shared `keebo::drill`
//!    harness);
//! 2. a torn WAL tail (kill mid-write) loses at most the final unflushed
//!    record, is reported, never panics, and the control plane keeps
//!    operating afterwards;
//! 3. warm restart beats cold start: a restored control plane skips
//!    re-onboarding and keeps its savings baseline, where a from-scratch
//!    control plane loses both;
//! 4. every persisted record/snapshot re-encodes byte-identically after a
//!    decode round trip, and the decoders are total on arbitrary bytes.

// Offline builds patch proptest with a no-op stub (.devstubs/), under which
// the imports below count as unused; real proptest (CI) uses all of them.
#![allow(unused_imports, dead_code)]

use cdw_sim::{
    Account, FaultPlan, QuerySpec, Simulator, WarehouseConfig, WarehouseId, WarehouseSize, DAY_MS,
    HOUR_MS, MINUTE_MS,
};
use keebo::drill::{
    build_sim, fast_setup, fingerprint, run_cell, run_uninterrupted, DrillBackend, DrillCell,
    END_MS, OBSERVE_MS, TICK_MS, WAREHOUSE,
};
use keebo::persist::{decode_record, decode_snapshot, encode_record, encode_snapshot};
use keebo::{
    generate_trace, scan_frames, ActionLogEntry, CrashPlan, DetRng, FileStore, KwoSetup, MemStore,
    Orchestrator, PersistRecord, RecoveryStats, RetrainRecord, Rule, RuleEffect, SliderPosition,
    StateStore, TimeWindow,
};
use proptest::prelude::*;
use workload::{BiWorkload, EtlWorkload};

#[test]
fn recovery_is_bit_identical_smoke() {
    // Breadth lives in tests/store_matrix.rs; this is the fast canary on
    // the plain MemStore path.
    for (scenario, crash_seed) in [(0usize, 3u64), (3, 7)] {
        let seed = 100 + scenario as u64 * 17;
        let (base_log, base_credits) = run_uninterrupted(scenario, seed);
        assert!(
            !base_log.is_empty(),
            "scenario {scenario}: baseline took actions"
        );
        let cell = DrillCell::clean(scenario, seed, crash_seed, DrillBackend::Mem);
        let out = run_cell(&cell).expect("recovery from a clean kill");
        assert_eq!(
            out.fingerprint.0, base_log,
            "scenario {scenario}: decision log diverged after crash at tick {}",
            out.crash_tick
        );
        assert_eq!(
            out.fingerprint.1, base_credits,
            "scenario {scenario}: billing diverged after crash at tick {}",
            out.crash_tick
        );
        assert!(
            out.stats.snapshot_bytes > 0,
            "recovery started from a snapshot"
        );
        assert_eq!(out.stats.wal_truncated_bytes, 0, "clean kill, clean WAL");
    }
}

#[test]
fn torn_wal_tail_loses_at_most_the_last_record() {
    let seed = 909;
    let crash_t = OBSERVE_MS + 11 * TICK_MS;
    let (mut sim, wh) = build_sim(0, seed);
    let store = MemStore::new();
    let mut kwo = Orchestrator::new(seed);
    kwo.attach_store(Box::new(store.clone()), sim.now());
    // Long snapshot interval: plenty of WAL records at kill time.
    kwo.set_snapshot_interval_ticks(1_000);
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, crash_t);
    drop(kwo);

    let records_before = store.wal_records();
    assert!(records_before > 1, "scenario accumulated WAL records");
    // The kill tore the final record off the log.
    assert!(store.drop_last_record() > 0);
    let (mut kwo, stats) =
        Orchestrator::restore(Box::new(store), &sim).expect("torn tail must not prevent recovery");
    assert_eq!(stats.replayed_records, records_before - 1);
    // The recovered control plane lost one tick of bookkeeping but keeps
    // operating: the run completes and keeps making decisions.
    kwo.run_until(&mut sim, END_MS);
    let o = kwo.optimizer(WAREHOUSE).expect("managed warehouse");
    assert!(o.onboarded(), "recovery preserved onboarding");
    assert!(
        sim.account().accrued_credits(wh, sim.now()) > 0.0,
        "run completed with billing intact"
    );
}

#[test]
fn file_store_clean_recovery_is_bit_identical() {
    let seed = 4242;
    let scenario = 1;
    let (base_log, base_credits) = run_uninterrupted(scenario, seed);

    let dir = scratch_dir("clean");
    let (mut sim, wh) = build_sim(scenario, seed);
    let mut kwo = Orchestrator::new(seed);
    kwo.attach_store(
        Box::new(FileStore::open(&dir).expect("open store")),
        sim.now(),
    );
    // Mid-cycle snapshot cadence: recovery mixes snapshot + live WAL.
    kwo.set_snapshot_interval_ticks(13);
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, OBSERVE_MS + 17 * TICK_MS);
    // Process dies: every file handle goes away; only the directory survives.
    drop(kwo);

    let store = FileStore::open(&dir).expect("reopen store");
    let (mut kwo, stats) = Orchestrator::restore(Box::new(store), &sim).expect("recovery");
    assert!(stats.snapshot_bytes > 0);
    assert_eq!(stats.wal_truncated_bytes, 0);
    kwo.run_until(&mut sim, END_MS);
    let (log, credits) = fingerprint(&kwo, &sim, wh);
    assert_eq!(log, base_log, "file-backed recovery diverged");
    assert_eq!(credits, base_credits, "file-backed billing diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_store_torn_write_is_truncated_and_reported() {
    let seed = 5150;
    let dir = scratch_dir("torn");
    let (mut sim, wh) = build_sim(2, seed);
    let mut kwo = Orchestrator::new(seed);
    kwo.attach_store(
        Box::new(FileStore::open(&dir).expect("open store")),
        sim.now(),
    );
    kwo.set_snapshot_interval_ticks(1_000);
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, OBSERVE_MS + 9 * TICK_MS);
    drop(kwo);

    // Kill mid-write: a partial frame (bogus length + checksum, truncated
    // payload) sits at the end of the WAL.
    {
        use std::io::Write;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .expect("open wal");
        wal.write_all(&[
            0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03,
        ])
        .expect("tear wal");
    }

    let store = FileStore::open(&dir).expect("reopen store");
    let (mut kwo, stats) =
        Orchestrator::restore(Box::new(store), &sim).expect("a torn tail is truncated, not fatal");
    assert!(
        stats.wal_truncated_bytes > 0,
        "torn bytes are reported: {stats:?}"
    );
    assert!(stats.replayed_records > 0, "intact prefix replayed");
    kwo.run_until(&mut sim, END_MS);
    assert!(kwo.optimizer(WAREHOUSE).expect("managed").onboarded());
    assert!(sim.account().accrued_credits(wh, sim.now()) > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Idle-heavy pre-crash history shared by the warm/cold comparison: a Large,
/// mostly idle warehouse optimized for two days, control plane killed at
/// day 3.
fn pre_crash_idle_run(seed: u64) -> (Simulator, WarehouseId, MemStore) {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        WAREHOUSE,
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
    );
    let mut sim = Simulator::new(account);
    for h in 0..(4 * 24) {
        sim.submit_query(
            wh,
            QuerySpec::builder(h)
                .work_ms_xs(30_000.0)
                .cache_affinity(0.2)
                .arrival_ms(h * HOUR_MS + 7 * MINUTE_MS)
                .build(),
        );
    }
    let store = MemStore::new();
    let mut kwo = Orchestrator::new(seed);
    kwo.attach_store(Box::new(store.clone()), sim.now());
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 3 * DAY_MS);
    drop(kwo);
    (sim, wh, store)
}

#[test]
fn warm_restart_beats_cold_start_on_the_same_seed() {
    let seed = 77;

    // Warm: restore from the WAL and keep optimizing immediately.
    let (mut sim_warm, _wh, store) = pre_crash_idle_run(seed);
    let (mut warm, stats) = Orchestrator::restore(Box::new(store), &sim_warm).expect("recovery");
    assert!(
        warm.optimizer(WAREHOUSE).expect("managed").onboarded(),
        "warm restart skips re-onboarding"
    );
    assert!(stats.snapshot_bytes > 0);
    warm.run_until(&mut sim_warm, 4 * DAY_MS);
    let warm_report = warm.savings_report(&sim_warm, WAREHOUSE, 3 * DAY_MS, 4 * DAY_MS);

    // Cold: identical history, but the replacement control plane starts
    // from nothing — it must re-observe and re-onboard, and its "original"
    // baseline is whatever config the dead optimizer happened to leave.
    let (mut sim_cold, _wh, _store) = pre_crash_idle_run(seed);
    let mut cold = Orchestrator::new(seed);
    cold.manage(&sim_cold, WAREHOUSE, fast_setup());
    assert!(!cold.optimizer(WAREHOUSE).expect("managed").onboarded());
    cold.observe_until(&mut sim_cold, 3 * DAY_MS + 12 * HOUR_MS);
    cold.onboard(&mut sim_cold);
    cold.run_until(&mut sim_cold, 4 * DAY_MS);
    let cold_report = cold.savings_report(&sim_cold, WAREHOUSE, 3 * DAY_MS, 4 * DAY_MS);

    assert!(
        warm_report.estimated_savings > cold_report.estimated_savings,
        "warm first-window savings {:.3} must strictly exceed cold {:.3}",
        warm_report.estimated_savings,
        cold_report.estimated_savings
    );
    assert!(
        warm_report.estimated_savings > 0.0,
        "warm restart keeps producing savings: {warm_report:?}"
    );
}

#[test]
fn every_persisted_record_re_encodes_byte_identically() {
    // A real run exercising every record variant, captured via MemStore.
    let seed = 31;
    let (mut sim, _wh) = build_sim(0, seed);
    let store = MemStore::new();
    let mut kwo = Orchestrator::new(seed);
    kwo.attach_store(Box::new(store.clone()), sim.now());
    kwo.set_snapshot_interval_ticks(1_000);
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, OBSERVE_MS + 6 * TICK_MS);
    kwo.set_slider(WAREHOUSE, SliderPosition::LowestCost);
    kwo.add_constraint(
        WAREHOUSE,
        Rule::new(
            "nights",
            TimeWindow::daily(20.0, 23.0),
            RuleEffect::NoSuspend,
        ),
    );
    kwo.admin_resume(&sim, WAREHOUSE);
    kwo.run_until(&mut sim, OBSERVE_MS + 8 * TICK_MS);
    drop(kwo);

    let mut boxed: Box<dyn StateStore> = Box::new(store);
    let contents = boxed.load().expect("load");
    let mut seen = [false; 6];
    for bytes in &contents.records {
        let record = decode_record(bytes).expect("every persisted record decodes");
        seen[match record {
            PersistRecord::Genesis { .. } => 0,
            PersistRecord::Manage { .. } => 1,
            PersistRecord::Tick { .. } => 2,
            PersistRecord::SliderChanged { .. } => 3,
            PersistRecord::AdminResume { .. } => 4,
            PersistRecord::ConstraintAdded { .. } => 5,
        }] = true;
        let re = encode_record(&record).expect("re-encode");
        assert_eq!(&re, bytes, "record round trip must be byte-identical");
    }
    // The genesis record is compacted away by attach_store's immediate
    // snapshot here (a MemStore never fails the write), so round-trip it
    // synthetically.
    let genesis = PersistRecord::Genesis { seed, at: 0 };
    let bytes = encode_record(&genesis).expect("encode genesis");
    let re =
        encode_record(&decode_record(&bytes).expect("decode genesis")).expect("re-encode genesis");
    assert_eq!(re, bytes, "genesis round trip must be byte-identical");
    seen[0] = true;
    assert_eq!(seen, [true; 6], "all six record variants were exercised");

    let snap_bytes = contents.snapshot.expect("attach_store wrote a snapshot");
    let snap = decode_snapshot(&snap_bytes).expect("snapshot decodes");
    let re = encode_snapshot(&snap).expect("re-encode snapshot");
    assert_eq!(re, snap_bytes, "snapshot round trip must be byte-identical");
}

/// Deterministic byte soup for the no-proptest (offline stub) build.
fn splatter(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed ^ 0x5DEE_CE66_D001u64.wrapping_mul(3);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[test]
fn decoders_are_total_on_arbitrary_bytes_deterministic() {
    // Raw byte soup of many lengths.
    for seed in 0..64u64 {
        let bytes = splatter(seed, (seed as usize * 7) % 300);
        let _ = scan_frames(&bytes);
        assert!(decode_record(&bytes).is_err() || !bytes.is_empty());
        let _ = decode_snapshot(&bytes);
    }
    // Mutations of a valid encoding: every single-byte corruption must
    // decode to Ok or Err, never panic.
    let valid = encode_record(&PersistRecord::SliderChanged {
        warehouse: "WH".to_string(),
        slider: SliderPosition::Balanced,
    })
    .expect("encode");
    for i in 0..valid.len() {
        let mut mutated = valid.clone();
        mutated[i] ^= 0x5A;
        let _ = decode_record(&mutated);
        let _ = decode_snapshot(&mutated);
        let _ = scan_frames(&mutated);
    }
}

#[test]
fn simple_persisted_types_round_trip_deterministic() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let mut rng = DetRng::seed_from_u64(seed);
        let json = serde_json::to_string(&rng).expect("encode DetRng");
        let back: DetRng = serde_json::from_str(&json).expect("decode DetRng");
        assert_eq!(rng, back);

        let retrain = RetrainRecord {
            episodes: seed as usize % 17,
            seed: if seed % 2 == 0 { Some(seed) } else { None },
        };
        let json = serde_json::to_string(&retrain).expect("encode RetrainRecord");
        let back: RetrainRecord = serde_json::from_str(&json).expect("decode RetrainRecord");
        assert_eq!(retrain, back);

        let stats = RecoveryStats {
            replayed_records: seed,
            wal_truncated_bytes: seed / 3,
            snapshot_bytes: seed / 7,
            recovery_wall_ms: seed as f64 * 0.25,
        };
        let json = serde_json::to_string(&stats).expect("encode RecoveryStats");
        let back: RecoveryStats = serde_json::from_str(&json).expect("decode RecoveryStats");
        assert_eq!(stats, back);

        // The RNG keeps producing the same stream after a round trip.
        use rand::Rng as _;
        let mut again: DetRng =
            serde_json::from_str(&serde_json::to_string(&rng).expect("enc")).expect("dec");
        assert_eq!(rng.gen::<u64>(), again.gen::<u64>());
    }
}

proptest! {
    /// The frame scanner and both persisted-state decoders are total:
    /// arbitrary input bytes yield a value or an error, never a panic.
    #[test]
    fn decoders_are_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let scan = scan_frames(&bytes);
        prop_assert!(scan.valid_bytes <= bytes.len());
        let _ = decode_record(&bytes);
        let _ = decode_snapshot(&bytes);
    }

    /// Retrain records round trip through serde for any field values.
    #[test]
    fn retrain_record_round_trips(episodes in 0usize..10_000, seed in any::<Option<u64>>()) {
        let r = RetrainRecord { episodes, seed };
        let json = serde_json::to_string(&r).unwrap();
        let back: RetrainRecord = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(r, back);
    }

    /// The deterministic RNG round trips mid-stream: serialize after any
    /// number of draws, deserialize, and the streams stay identical.
    #[test]
    fn det_rng_round_trips_mid_stream(seed in any::<u64>(), draws in 0usize..64) {
        use rand::Rng as _;
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..draws {
            rng.gen::<u64>();
        }
        let json = serde_json::to_string(&rng).unwrap();
        let mut back: DetRng = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(rng.gen::<u64>(), back.gen::<u64>());
    }
}

/// Unique scratch dir per test (integration tests run in parallel).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kwo-recovery-{}-{tag}-{n}", std::process::id()))
}
