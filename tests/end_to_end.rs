//! End-to-end tests shaped like the paper's experiments, at reduced scale so
//! they run in CI time. Each asserts the *direction* of the corresponding
//! evaluation claim; the bench binaries regenerate the full figures.

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS, MINUTE_MS};
use keebo::{generate_trace, KwoSetup, Orchestrator, SliderPosition, ValueBasedPricing};
use workload::{AdhocWorkload, EtlWorkload, WorkloadGenerator};

const OBSERVE_DAYS: u64 = 2;
const TOTAL_DAYS: u64 = 5;

struct Run {
    sim: Simulator,
    kwo: Orchestrator,
    wh: cdw_sim::WarehouseId,
}

fn run_kwo(
    gen: &dyn WorkloadGenerator,
    config: WarehouseConfig,
    slider: SliderPosition,
    seed: u64,
) -> Run {
    let mut account = Account::new();
    let wh = account.create_warehouse("WH", config);
    let mut sim = Simulator::new(account);
    for q in generate_trace(gen, 0, TOTAL_DAYS * DAY_MS, seed) {
        sim.submit_query(wh, q);
    }
    let mut kwo = Orchestrator::new(seed);
    kwo.manage(
        &sim,
        "WH",
        KwoSetup {
            slider,
            realtime_interval_ms: 20 * MINUTE_MS,
            onboarding_episodes: 3,
            refresh_episodes: 0,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, OBSERVE_DAYS * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, TOTAL_DAYS * DAY_MS);
    Run { sim, kwo, wh }
}

fn optimized_credits(run: &Run) -> f64 {
    run.sim
        .account()
        .ledger()
        .warehouse("WH")
        .range_total(OBSERVE_DAYS * 24, TOTAL_DAYS * 24)
        + run
            .sim
            .account()
            .warehouse(run.wh)
            .open_session_credits(run.sim.now())
}

fn p99_in_window(run: &Run, from: u64, to: u64) -> f64 {
    let lats: Vec<f64> = run
        .sim
        .account()
        .query_records()
        .iter()
        .filter(|r| (from * DAY_MS..to * DAY_MS).contains(&r.end))
        .map(|r| r.total_latency_ms() as f64)
        .collect();
    telemetry::percentile(&lats, 99.0)
}

/// Fig. 4 direction: KWO cuts the bill of an idle-heavy warehouse.
#[test]
fn kwo_saves_on_an_idle_heavy_warehouse() {
    let original = WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
    let run = run_kwo(
        &AdhocWorkload::default(),
        original,
        SliderPosition::Balanced,
        42,
    );
    let with_kwo = optimized_credits(&run);
    // Pre-Keebo daily rate extrapolated over the optimized window.
    let before_daily = run
        .sim
        .account()
        .ledger()
        .warehouse("WH")
        .range_total(0, OBSERVE_DAYS * 24)
        / OBSERVE_DAYS as f64;
    let without = before_daily * (TOTAL_DAYS - OBSERVE_DAYS) as f64;
    assert!(
        with_kwo < 0.7 * without,
        "expected >30% savings: {with_kwo:.1} vs {without:.1}"
    );
}

/// Fig. 4 performance side: savings must not come with big p99 regressions
/// at the Balanced slider.
#[test]
fn balanced_slider_protects_p99() {
    let original = WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
    let run = run_kwo(
        &AdhocWorkload::default(),
        original,
        SliderPosition::Balanced,
        42,
    );
    let before = p99_in_window(&run, 0, OBSERVE_DAYS);
    let after = p99_in_window(&run, OBSERVE_DAYS, TOTAL_DAYS);
    assert!(
        after < 2.0 * before,
        "p99 should stay near baseline: {before:.0}ms -> {after:.0}ms"
    );
}

/// Fig. 7 direction: the cost-most slider spends no more than the
/// performance-most slider on the same workload.
#[test]
fn slider_orders_cost() {
    let gen = AdhocWorkload::default();
    let original = || WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
    let cheap = optimized_credits(&run_kwo(&gen, original(), SliderPosition::LowestCost, 7));
    let fast = optimized_credits(&run_kwo(
        &gen,
        original(),
        SliderPosition::BestPerformance,
        7,
    ));
    assert!(
        cheap <= fast,
        "LowestCost ({cheap:.1}) must not outspend BestPerformance ({fast:.1})"
    );
}

/// §5/§7.2 direction: the savings report's without-Keebo estimate must be
/// in the right ballpark of the actually observed pre-Keebo spend rate.
#[test]
fn savings_report_is_calibrated_against_reality() {
    let original = WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
    let run = run_kwo(
        &AdhocWorkload::default(),
        original,
        SliderPosition::Balanced,
        11,
    );
    let report = run
        .kwo
        .savings_report(&run.sim, "WH", OBSERVE_DAYS * DAY_MS, TOTAL_DAYS * DAY_MS);
    // The replay must estimate a plausible without-Keebo cost: positive and
    // within a factor ~2.5 of the pre-Keebo daily spend extrapolated (the
    // workload's daily swing makes exact matching impossible by design).
    let before_daily = run
        .sim
        .account()
        .ledger()
        .warehouse("WH")
        .range_total(0, OBSERVE_DAYS * 24)
        / OBSERVE_DAYS as f64;
    let extrapolated = before_daily * (TOTAL_DAYS - OBSERVE_DAYS) as f64;
    assert!(report.estimated_without_keebo > 0.0);
    let ratio = report.estimated_without_keebo / extrapolated;
    assert!(
        (0.4..2.5).contains(&ratio),
        "estimate {:.1} vs extrapolated {extrapolated:.1} (ratio {ratio:.2})",
        report.estimated_without_keebo
    );
    // Value-based pricing never charges more than the savings.
    let invoice = ValueBasedPricing::default().invoice(&report);
    assert!(invoice.charge_credits <= report.estimated_savings.max(0.0));
}

/// §7.3 direction: KWO's own overhead is small relative to usage.
#[test]
fn overhead_is_negligible() {
    let original = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
    let run = run_kwo(
        &EtlWorkload::default(),
        original,
        SliderPosition::Balanced,
        3,
    );
    let usage = run.sim.account().ledger().total_credits();
    let overhead = run.sim.account().ledger().overhead().total();
    assert!(overhead > 0.0, "telemetry fetches must cost something");
    assert!(
        overhead < 0.05 * usage,
        "overhead {overhead:.2} should be <5% of usage {usage:.2}"
    );
}

/// §4.4: an external change freezes optimization; dashboards keep working.
#[test]
fn external_change_is_detected_and_respected() {
    let original = WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
    let mut run = run_kwo(
        &AdhocWorkload::default(),
        original,
        SliderPosition::Balanced,
        5,
    );
    let actions_before = run.kwo.optimizer("WH").unwrap().actuator().log().len();
    run.sim
        .alter_warehouse(
            run.wh,
            cdw_sim::WarehouseCommand::SetClusterRange { min: 1, max: 8 },
            cdw_sim::ActionSource::External,
        )
        .unwrap();
    let until = run.sim.now() + 4 * 60 * MINUTE_MS;
    run.kwo.run_until(&mut run.sim, until);
    let o = run.kwo.optimizer("WH").unwrap();
    assert!(o.is_paused(run.sim.now()));
    // At most the single revert action fired after the external change.
    assert!(o.actuator().log().len() <= actions_before + 1);
}

/// Determinism: the full pipeline is reproducible from a seed.
#[test]
fn end_to_end_runs_are_deterministic() {
    let f = || {
        let original = WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
        let run = run_kwo(
            &AdhocWorkload::default(),
            original,
            SliderPosition::Balanced,
            99,
        );
        (
            optimized_credits(&run),
            run.sim.account().query_records().len(),
            run.kwo.optimizer("WH").unwrap().actuator().log().len(),
        )
    };
    assert_eq!(f(), f());
}
