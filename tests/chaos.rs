//! Chaos suite: the fault-injection layer driving the resilient control
//! plane end to end.
//!
//! Three contracts are pinned here:
//!
//! 1. an empty `FaultPlan` is bit-identical to a simulator built without an
//!    injector at all (the injector must never consult its RNG);
//! 2. a `(workload seed, fault seed, plan)` triple fully reproduces a run —
//!    action log, billing, final config, and fault stats;
//! 3. a 14-day run through overlapping fault windows (ALTER bursts,
//!    throttling, a 6 h telemetry outage, partial batches, slow resumes,
//!    delayed command application) finishes with the reconciler converged,
//!    a valid warehouse config, and positive — if reduced — savings;
//! 4. the `OpsKpis` reliability counters (degraded ticks, fetch outages,
//!    transient retries, ...) survive a mid-scenario orchestrator rebuild
//!    from the durable store — a crash must not zero the ops history.

use cdw_sim::{
    Account, FaultPlan, Simulator, WarehouseConfig, WarehouseId, WarehouseSize, DAY_MS, HOUR_MS,
    MINUTE_MS,
};
use keebo::{generate_trace, HealthState, KwoSetup, MemStore, OpsKpis, Orchestrator};
use workload::BiWorkload;

const WAREHOUSE: &str = "BI_WH";

struct Run {
    sim: Simulator,
    kwo: Orchestrator,
    wh: WarehouseId,
}

/// Builds the standard chaos scenario: an oversized BI warehouse managed by
/// KWO, observed for `observe_days` and optimized through `total_days`, on a
/// simulator produced by `build_sim` (with or without an injector).
fn run_kwo(
    build_sim: impl FnOnce(Account) -> Simulator,
    total_days: u64,
    observe_days: u64,
    seed: u64,
) -> Run {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        WAREHOUSE,
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
    );
    let mut sim = build_sim(account);
    for q in generate_trace(&BiWorkload::default(), 0, total_days * DAY_MS, seed) {
        sim.submit_query(wh, q);
    }
    let mut kwo = Orchestrator::new(seed);
    kwo.manage(
        &sim,
        WAREHOUSE,
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 3,
            refresh_episodes: 0,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, observe_days * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, total_days * DAY_MS);
    Run { sim, kwo, wh }
}

/// Everything that must be identical between two reproducible runs.
fn fingerprint(run: &Run) -> String {
    let o = run.kwo.optimizer(WAREHOUSE).unwrap();
    format!(
        "log={:?} billed={:.9} config={:?} faults={:?}",
        o.actuator().log(),
        run.sim.account().ledger().warehouse(WAREHOUSE).total(),
        run.sim.account().describe(run.wh).config,
        run.sim.fault_stats(),
    )
}

#[test]
fn zero_fault_plan_is_bit_identical_to_the_plain_simulator() {
    let plain = run_kwo(Simulator::new, 7, 3, 41);
    let empty = run_kwo(
        |account| Simulator::with_faults(account, FaultPlan::none(), 999),
        7,
        3,
        41,
    );
    assert_eq!(fingerprint(&plain), fingerprint(&empty));
    // The savings report — the user-facing number — is byte-identical too.
    let a = plain
        .kwo
        .savings_report(&plain.sim, WAREHOUSE, 3 * DAY_MS, 7 * DAY_MS);
    let b = empty
        .kwo
        .savings_report(&empty.sim, WAREHOUSE, 3 * DAY_MS, 7 * DAY_MS);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn same_seed_and_fault_plan_reproduce_the_same_run() {
    let plan = || {
        FaultPlan::none()
            .with_alter_burst(4 * DAY_MS, 4 * DAY_MS + 12 * HOUR_MS, 0.7)
            .with_telemetry_outage(5 * DAY_MS, 5 * DAY_MS + 4 * HOUR_MS)
            .with_slow_resumes(6 * DAY_MS, 6 * DAY_MS + 6 * HOUR_MS, 120_000, 0.5)
    };
    let go = || {
        run_kwo(
            |account| Simulator::with_faults(account, plan(), 7),
            8,
            3,
            41,
        )
    };
    assert_eq!(fingerprint(&go()), fingerprint(&go()));
}

#[test]
fn ops_kpis_survive_a_mid_scenario_rebuild() {
    const TOTAL: u64 = 12;
    const OBSERVE: u64 = 5;
    // Tick-aligned kill between fault windows: after the telemetry outage
    // (day 8–8.25) has inflated the reliability counters, before the slow
    // resumes of day 10.
    const CRASH_MS: u64 = 9 * DAY_MS + 5 * HOUR_MS;
    let plan = || {
        FaultPlan::none()
            .with_alter_burst(6 * DAY_MS, 7 * DAY_MS, 0.9)
            .with_telemetry_outage(8 * DAY_MS, 8 * DAY_MS + 6 * HOUR_MS)
            .with_slow_resumes(10 * DAY_MS, 10 * DAY_MS + 6 * HOUR_MS, 120_000, 0.5)
    };

    // Uninterrupted reference.
    let baseline = run_kwo(
        |account| Simulator::with_faults(account, plan(), 7),
        TOTAL,
        OBSERVE,
        41,
    );
    let baseline_kpis = OpsKpis::collect(
        baseline.kwo.optimizer(WAREHOUSE).unwrap(),
        baseline.sim.now(),
    );

    // Same scenario, but the control plane journals to a store, dies at
    // CRASH_MS, and is rebuilt from the snapshot + WAL.
    let mut account = Account::new();
    let wh = account.create_warehouse(
        WAREHOUSE,
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
    );
    let mut sim = Simulator::with_faults(account, plan(), 7);
    for q in generate_trace(&BiWorkload::default(), 0, TOTAL * DAY_MS, 41) {
        sim.submit_query(wh, q);
    }
    let store = MemStore::new();
    let mut kwo = Orchestrator::new(41);
    kwo.attach_store(Box::new(store.clone()), sim.now());
    kwo.manage(
        &sim,
        WAREHOUSE,
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 3,
            refresh_episodes: 0,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, OBSERVE * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, CRASH_MS);
    drop(kwo);

    let (mut kwo, stats) = Orchestrator::restore(Box::new(store), &sim).expect("rebuild");
    assert!(stats.replayed_records > 0, "rebuild replayed WAL records");
    kwo.run_until(&mut sim, TOTAL * DAY_MS);

    let o = kwo.optimizer(WAREHOUSE).unwrap();
    let kpis = OpsKpis::collect(o, sim.now());
    // The pre-crash ops history is still there — a rebuild must not zero
    // the reliability counters the faults inflated before the kill...
    assert!(kpis.fetch_outages > 0, "outage count lost: {kpis:?}");
    assert!(kpis.degraded_ticks > 0, "degraded ticks lost: {kpis:?}");
    // ...and the full KPI snapshot matches the uninterrupted run exactly,
    // counters and health trajectory both.
    assert_eq!(
        format!("{kpis:?}"),
        format!("{baseline_kpis:?}"),
        "reliability KPIs diverged across the rebuild"
    );
    assert_eq!(
        fingerprint(&Run { sim, kwo, wh }),
        fingerprint(&baseline),
        "decision log / billing diverged across the rebuild"
    );
}

#[test]
fn fourteen_day_chaos_run_converges_and_still_saves() {
    const TOTAL: u64 = 14;
    const OBSERVE: u64 = 5;
    // All windows open after onboarding so both runs share the same
    // observation phase.
    let plan = FaultPlan::none()
        .with_alter_burst(6 * DAY_MS, 7 * DAY_MS, 0.9)
        .with_throttle(7 * DAY_MS, 7 * DAY_MS + 6 * HOUR_MS, 0.5)
        .with_telemetry_outage(8 * DAY_MS, 8 * DAY_MS + 6 * HOUR_MS)
        .with_partial_telemetry(9 * DAY_MS, 9 * DAY_MS + 3 * HOUR_MS, 0.5)
        .with_slow_resumes(10 * DAY_MS, 10 * DAY_MS + 6 * HOUR_MS, 120_000, 0.5)
        .with_delayed_alters(11 * DAY_MS, 11 * DAY_MS + 3 * HOUR_MS, 20 * MINUTE_MS, 0.5);

    let clean = run_kwo(Simulator::new, TOTAL, OBSERVE, 41);
    let faulted = run_kwo(
        |account| Simulator::with_faults(account, plan, 7),
        TOTAL,
        OBSERVE,
        41,
    );

    // The injector actually fired.
    let stats = faulted.sim.fault_stats();
    assert!(stats.alter_failures > 0, "no ALTER faults fired: {stats:?}");
    assert!(stats.telemetry_outages > 0, "no outages fired: {stats:?}");

    // The control plane felt it and recovered: time was spent degraded, yet
    // by the end of the run health is back to Healthy and the reconciler has
    // no outstanding drift or failure streak.
    let o = faulted.kwo.optimizer(WAREHOUSE).unwrap();
    let kpis = OpsKpis::collect(o, faulted.sim.now());
    assert!(kpis.degraded_ticks > 0, "never degraded: {kpis:?}");
    assert!(kpis.fetch_outages > 0, "fetcher never saw the outage");
    assert_eq!(
        kpis.health,
        HealthState::Healthy,
        "did not recover: {kpis:?}"
    );
    assert_eq!(o.reconciler().consecutive_failures(), 0);

    // No constraint violations: the warehouse ends in a valid configuration.
    let final_config = faulted.sim.account().describe(faulted.wh).config;
    final_config.validate().expect("final config must be valid");

    // Savings survive the chaos: positive, but no better than fault-free
    // (faults can only cost money — failed downsizes, slow resumes, blind
    // degraded ticks). Allow 10% tolerance for decision-path divergence.
    let clean_savings = clean
        .kwo
        .savings_report(&clean.sim, WAREHOUSE, OBSERVE * DAY_MS, TOTAL * DAY_MS)
        .estimated_savings;
    let faulted_savings = faulted
        .kwo
        .savings_report(&faulted.sim, WAREHOUSE, OBSERVE * DAY_MS, TOTAL * DAY_MS)
        .estimated_savings;
    assert!(
        faulted_savings > 0.0,
        "chaos run must still save credits, got {faulted_savings:.2}"
    );
    assert!(
        faulted_savings <= clean_savings * 1.1,
        "faults should not increase savings: faulted {faulted_savings:.2} vs clean {clean_savings:.2}"
    );
}
