//! Regression net for worker-pool gauge accounting under panics.
//!
//! `keebo.fleet.pool.busy_workers` and `.queue_depth` are drop-guard
//! maintained: a ticket panic (or anything else unwinding out of ticket
//! handling) must restore both to zero once the batch drains, and the
//! submitter must not deadlock. Before the guards, the busy gauge could
//! drift up permanently and `run_indexed` could hang on a `pending` count
//! that never reached zero.
//!
//! Lives in its own integration binary: these assertions read the
//! process-global metrics registry, which other test binaries' pool
//! traffic would race.

use keebo::WorkerPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn busy() -> f64 {
    keebo::obs::global()
        .gauge("keebo.fleet.pool.busy_workers")
        .get()
}

fn queue_depth() -> f64 {
    keebo::obs::global()
        .gauge("keebo.fleet.pool.queue_depth")
        .get()
}

#[test]
fn gauges_return_to_zero_after_ticket_panic() {
    let pool = WorkerPool::new(2);

    // Healthy batch first: both gauges settle at zero.
    pool.run_indexed(8, 2, |_| {});
    assert_eq!(busy(), 0.0, "busy_workers after a clean batch");
    assert_eq!(queue_depth(), 0.0, "queue_depth after a clean batch");

    // A panicking ticket: the panic re-raises on the submitter after the
    // batch drains, and the gauges still settle at zero.
    let res = catch_unwind(AssertUnwindSafe(|| {
        pool.run_indexed(8, 2, |i| {
            if i == 3 {
                panic!("ticket 3 exploded");
            }
        });
    }));
    assert!(res.is_err(), "ticket panic must re-raise on the submitter");
    assert_eq!(busy(), 0.0, "busy_workers drifted after a ticket panic");
    assert_eq!(
        queue_depth(),
        0.0,
        "queue_depth drifted after a ticket panic"
    );

    // The pool is still fully usable and accounting stays clean.
    pool.run_indexed(4, 2, |_| {});
    assert_eq!(busy(), 0.0, "busy_workers after reusing the pool");
    assert_eq!(queue_depth(), 0.0, "queue_depth after reusing the pool");
    assert!(
        keebo::obs::global()
            .counter("keebo.fleet.pool.ticket_panics")
            .get()
            >= 1,
        "panic must be counted"
    );
}
